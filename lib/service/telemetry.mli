(** Structured JSON-lines telemetry for the batch service.

    Every event is one JSON object per line with a fixed envelope
    ([ts], [event]) plus event-specific fields.  Sinks are pluggable
    and internally serialized, so worker domains emit without any
    coordination.  Telemetry is observability, not results: nothing in
    it participates in result hashing.

    The sink type is the observability layer's {!Noc_obs.Sink.t}
    (re-exported with its fields), so span traces and telemetry share
    one transport — [Noc_obs.Export.to_sink] writes a [noc-trace/1]
    stream through the very same sinks. *)

type sink = Noc_obs.Sink.t = { emit : Json.t -> unit; close : unit -> unit }

val null : sink
val to_channel : out_channel -> sink
(** Mutex-serialized writer; [close] flushes but does not close the
    channel (the caller owns it). *)

val to_file : string -> sink
(** Atomic writer: events accumulate in a temp file next to [path] and
    [close] renames it into place — a killed run never leaves a
    truncated half-line at [path].
    @raise Sys_error when the temp file cannot be created. *)

val memory : unit -> sink * (unit -> Json.t list)
(** In-memory sink and an accessor returning events oldest-first. *)

val tee : sink -> sink -> sink

val line : Json.t -> string
(** The JSONL rendering of one event (no trailing newline). *)

(** Event constructors.  [index] is the job's position in its batch;
    [corr] is the wire-level correlation id (absent for in-process
    batch jobs), emitted as a ["corr"] field when present. *)

val batch_started : jobs:int -> domains:int -> cache_capacity:int -> Json.t

val job_submitted :
  ?corr:string -> index:int -> job:Job.t -> queue_depth:int -> unit -> Json.t

val job_started : ?corr:string -> index:int -> job:Job.t -> unit -> Json.t

val job_finished :
  ?corr:string ->
  index:int ->
  job:Job.t ->
  outcome:Outcome.t ->
  cache_hit:bool ->
  unit ->
  Json.t

val queue_depth : depth:int -> Json.t
(** Gauge event: instantaneous pool queue depth at submission time. *)

val cache_evicted : entries:int -> capacity:int -> Json.t
(** The result cache evicted its LRU entry while at [capacity];
    [entries] is the entry count after the eviction. *)

val batch_finished :
  wall_ms:float ->
  succeeded:int ->
  failed:int ->
  cancelled:int ->
  cache_stats:Result_cache.stats ->
  Json.t

(** Server lifecycle events ([noc_tool serve]); they share the sinks
    and envelope with the batch events above. *)

val server_started : socket:string -> domains:int -> store_entries:int -> Json.t
val client_connected : peer:string -> Json.t
val client_disconnected : peer:string -> Json.t

val drain_started : inflight:int -> Json.t
(** SIGTERM received: the server stopped accepting and is waiting for
    [inflight] jobs to finish. *)

val server_stopped : jobs:int -> wall_ms:float -> Json.t
