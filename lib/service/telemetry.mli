(** Structured JSON-lines telemetry for the batch service.

    Every event is one JSON object per line with a fixed envelope
    ([ts], [event]) plus event-specific fields.  Sinks are pluggable
    and internally serialized, so worker domains emit without any
    coordination.  Telemetry is observability, not results: nothing in
    it participates in result hashing. *)

type sink = { emit : Json.t -> unit; close : unit -> unit }

val null : sink
val to_channel : out_channel -> sink
(** Mutex-serialized writer; [close] flushes but does not close the
    channel (the caller owns it). *)

val to_file : string -> sink
(** Opens [path] for writing; [close] flushes and closes.
    @raise Sys_error when the file cannot be created. *)

val memory : unit -> sink * (unit -> Json.t list)
(** In-memory sink and an accessor returning events oldest-first. *)

val tee : sink -> sink -> sink

val line : Json.t -> string
(** The JSONL rendering of one event (no trailing newline). *)

(** Event constructors.  [index] is the job's position in its batch. *)

val batch_started : jobs:int -> domains:int -> cache_capacity:int -> Json.t
val job_submitted : index:int -> job:Job.t -> queue_depth:int -> Json.t
val job_started : index:int -> job:Job.t -> Json.t
val job_finished :
  index:int -> job:Job.t -> outcome:Outcome.t -> cache_hit:bool -> Json.t
val batch_finished :
  wall_ms:float ->
  succeeded:int ->
  failed:int ->
  cancelled:int ->
  cache_stats:Result_cache.stats ->
  Json.t
