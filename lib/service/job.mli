(** The job model: one self-contained solver request, with a canonical
    serialization and a stable content hash.

    A job names a design source — a registry benchmark synthesized at a
    switch count, or an inline design in the textual noc-design format
    — and a method to apply to it.  Canonical encoding writes every
    default out explicitly in a fixed field order, so the MD5 {!hash}
    of that encoding is a platform- and process-independent identity:
    the key of the content-addressed result cache and the job id in
    telemetry and bench baselines. *)

type design =
  | Benchmark of { name : string; n_switches : int; max_degree : int }
      (** A registry benchmark, synthesized at [n_switches] with the
          given per-switch link budget. *)
  | Inline of string
      (** A complete design in the noc-design 1 textual format (see
          {!Noc_model.Io}); hashed as content, so the same text is the
          same job wherever it came from. *)

type prepare = As_is | Removal_first | Ordering_first
(** What to do to the design before simulating: nothing, the paper's
    deadlock-removal algorithm, or the Dally–Towles resource-ordering
    baseline (hop-index strategy). *)

type method_ =
  | Removal of {
      heuristic : Noc_deadlock.Removal.heuristic;
      directions : Noc_deadlock.Cost_table.direction list;
      resource : Noc_deadlock.Break_cycle.resource_kind;
    }
  | Resource_ordering of { strategy : Noc_deadlock.Resource_ordering.strategy }
  | Sweep
      (** The full method comparison of {!Noc_experiments.Sweep} on one
          design point. *)
  | Simulate of {
      prepare : prepare;
      workload : Noc_benchmarks.Workloads.spec;
      buffer_depth : int;
      max_cycles : int;
    }
      (** Run the wormhole simulator on the (optionally prepared)
          design under a seeded workload; the outcome carries latency
          percentiles, throughput and any deadlock certificate. *)

type t = { design : design; method_ : method_ }

val default_max_degree : int
(** [4], matching [noc_tool]'s default link budget. *)

val removal_defaults : method_
(** [Removal] with the paper's defaults: smallest cycle first, both
    directions, VC resource. *)

val default_buffer_depth : int
(** [4], matching {!Noc_sim.Engine.default_config}. *)

val default_max_cycles : int
(** [200_000], matching {!Noc_sim.Engine.default_config}. *)

val simulate :
  ?prepare:prepare ->
  ?buffer_depth:int ->
  ?max_cycles:int ->
  Noc_benchmarks.Workloads.spec ->
  method_
(** [Simulate] with engine defaults and [As_is] preparation. *)

val prepare_name : prepare -> string
(** ["as-is"], ["removal"] or ["ordering"] — the canonical JSON tag. *)

val prepare_of_name : string -> (prepare, string) result

val to_json : t -> Json.t
(** Canonical: fixed field order, defaults explicit. *)

val of_json : Json.t -> (t, string) result
(** Accepts omitted optional fields (defaulted); inverse of {!to_json}. *)

val canonical : t -> string
(** [Json.to_string (to_json t)] — the hashed text. *)

val hash : t -> string
(** MD5 of {!canonical}, lowercase hex (32 chars).  Equal jobs hash
    equal across platforms and processes. *)

val short_hash : t -> string
(** First 8 hex chars of {!hash}; for logs and telemetry. *)

val label : t -> string
(** Human-readable one-liner, e.g. ["removal D36_8@14"]. *)

val pp : Format.formatter -> t -> unit

val file_schema : string
(** ["noc-jobs/1"], the job-file schema tag. *)

val list_to_json : t list -> Json.t
(** A complete job file value (schema + jobs array). *)

val list_of_json : string -> (t list, string) result
(** Parse a job file; errors name the offending job index. *)
