(* Machine-readable batch-service reports (BENCH_service.json) and the
   baseline comparison behind the CI service gate.

   Same philosophy as Bench_report for the removal sweep: nothing
   machine-dependent is ever compared across machines.  Result hashes
   are deterministic and checked exactly; wall times are only compared
   as same-host ratios (parallel speedup, warm-replay fraction); and
   the speedup floors are skipped entirely on hosts with fewer cores
   than the arm being judged, with [host_cores] recorded so the report
   says which floors were actually in force. *)

type job_entry = { label : string; job_hash : string; result_hash : string }
type timing = { domains : int; wall_ms : float; jobs_per_s : float }

type t = {
  host_cores : int;
  jobs : job_entry list;
  timings : timing list;
  replay_wall_ms : float;
  replay_hit_rate : float;
  collector_off_wall_ms : float option;
  collector_on_wall_ms : float option;
}

let schema = "bench-service/1"

let collector_overhead report =
  match (report.collector_off_wall_ms, report.collector_on_wall_ms) with
  | Some off, Some on_ when off > 0. -> Some ((on_ -. off) /. off)
  | _ -> None

let wall_at report ~domains =
  List.find_opt (fun tm -> tm.domains = domains) report.timings
  |> Option.map (fun tm -> tm.wall_ms)

let speedup report ~domains =
  match (wall_at report ~domains:1, wall_at report ~domains) with
  | Some base, Some arm when arm > 0. -> Some (base /. arm)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json report =
  let job_entry e =
    Json.Obj
      [
        ("label", Json.Str e.label);
        ("job", Json.Str e.job_hash);
        ("result_hash", Json.Str e.result_hash);
      ]
  in
  let timing tm =
    Json.Obj
      [
        ("domains", Json.Num (float_of_int tm.domains));
        ("wall_ms", Json.Num tm.wall_ms);
        ("jobs_per_s", Json.Num tm.jobs_per_s);
      ]
  in
  let collector_fields =
    (* Absent on pre-collector baselines; emitted only when measured so
       old reports keep their exact byte shape. *)
    match (report.collector_off_wall_ms, report.collector_on_wall_ms) with
    | Some off, Some on_ ->
        [
          ("collector_off_wall_ms", Json.Num off);
          ("collector_on_wall_ms", Json.Num on_);
        ]
    | _ -> []
  in
  Json.to_string_pretty
    (Json.Obj
       ([
          ("schema", Json.Str schema);
          ("host_cores", Json.Num (float_of_int report.host_cores));
          ("jobs", Json.Arr (List.map job_entry report.jobs));
          ("timings", Json.Arr (List.map timing report.timings));
          ("replay_wall_ms", Json.Num report.replay_wall_ms);
          ("replay_hit_rate", Json.Num report.replay_hit_rate);
        ]
       @ collector_fields))
  ^ "\n"

let of_json text =
  match Json.of_string text with
  | Error msg -> Error msg
  | Ok root -> (
      try
        let s = Json.to_str (Json.field "schema" root) in
        if s <> schema then
          Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
        else
          Ok
            {
              host_cores = Json.to_int (Json.field "host_cores" root);
              jobs =
                List.map
                  (fun item ->
                    {
                      label = Json.to_str (Json.field "label" item);
                      job_hash = Json.to_str (Json.field "job" item);
                      result_hash = Json.to_str (Json.field "result_hash" item);
                    })
                  (Json.to_list (Json.field "jobs" root));
              timings =
                List.map
                  (fun item ->
                    {
                      domains = Json.to_int (Json.field "domains" item);
                      wall_ms = Json.to_num (Json.field "wall_ms" item);
                      jobs_per_s = Json.to_num (Json.field "jobs_per_s" item);
                    })
                  (Json.to_list (Json.field "timings" root));
              replay_wall_ms = Json.to_num (Json.field "replay_wall_ms" root);
              replay_hit_rate = Json.to_num (Json.field "replay_hit_rate" root);
              collector_off_wall_ms =
                Option.map Json.to_num
                  (Json.member "collector_off_wall_ms" root);
              collector_on_wall_ms =
                Option.map Json.to_num (Json.member "collector_on_wall_ms" root);
            }
      with Json.Parse_error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Baseline comparison (the CI gate)                                   *)
(* ------------------------------------------------------------------ *)

let default_speedup_floors = [ (2, 1.6); (4, 2.5) ]

let compare_to_baseline ?(speedup_floors = default_speedup_floors)
    ?(max_replay_fraction = 0.5) ?(max_collector_overhead = 0.03)
    ?(collector_slack_ms = 5.) ~baseline current =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (* Result hashes are deterministic outputs: any drift from the
     committed baseline is a real behaviour change. *)
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.job_hash = b.job_hash) current.jobs with
      | None -> err "%s: job missing from current report" b.label
      | Some c ->
          if c.result_hash <> b.result_hash then
            err "%s: result hash changed %s -> %s (output drift)" b.label
              b.result_hash c.result_hash)
    baseline.jobs;
  (* Warm replay must be all cache hits and markedly cheaper than the
     cold sequential arm (a same-host ratio). *)
  if current.replay_hit_rate < 1.0 then
    err "warm replay hit rate %.3f below 1.0 — cache keys are unstable"
      current.replay_hit_rate;
  (match wall_at current ~domains:1 with
  | Some cold when cold > 0. ->
      if current.replay_wall_ms > cold *. max_replay_fraction then
        err
          "warm replay took %.1f ms, over %.0f%% of the %.1f ms cold \
           sequential run"
          current.replay_wall_ms
          (100. *. max_replay_fraction)
          cold
  | _ -> err "current report has no 1-domain timing");
  (* The series collector must be close to free: a same-host ratio of
     the same batch with and without the sampling domain, with a small
     absolute slack so short runs do not fail on scheduler noise.
     Like the speedup floors, only judged on hosts with a core to run
     the collector domain on — on one core any second domain steals
     real time by construction. *)
  (match (collector_overhead current, current.collector_off_wall_ms,
          current.collector_on_wall_ms) with
  | Some overhead, Some off, Some on_ when current.host_cores >= 2 ->
      if overhead > max_collector_overhead && on_ -. off > collector_slack_ms
      then
        err
          "series collector costs %.1f%% of batch throughput (%.1f ms on vs \
           %.1f ms off, limit %.0f%%)"
          (100. *. overhead) on_ off
          (100. *. max_collector_overhead)
  | _ -> ());
  (* Parallel speedup floors — only judged on hosts that actually have
     the cores for the arm in question. *)
  List.iter
    (fun (domains, floor) ->
      if current.host_cores >= domains then
        match speedup current ~domains with
        | None -> err "current report has no %d-domain timing" domains
        | Some s ->
            if s < floor then
              err "%d-domain speedup %.2fx below the %.1fx floor (host has %d \
                   cores)"
                domains s floor current.host_cores)
    speedup_floors;
  List.rev !errors

let pp ppf report =
  Format.fprintf ppf "@[<v>host cores: %d@,%d deterministic job hashes"
    report.host_cores (List.length report.jobs);
  List.iter
    (fun tm ->
      Format.fprintf ppf "@,%d domain%s: %8.1f ms  (%.1f jobs/s%s)" tm.domains
        (if tm.domains = 1 then " " else "s")
        tm.wall_ms tm.jobs_per_s
        (match speedup report ~domains:tm.domains with
        | Some s when tm.domains > 1 -> Printf.sprintf ", %.2fx" s
        | _ -> ""))
    report.timings;
  Format.fprintf ppf "@,warm replay: %8.1f ms  (hit rate %.2f)"
    report.replay_wall_ms report.replay_hit_rate;
  (match (collector_overhead report, report.collector_off_wall_ms,
          report.collector_on_wall_ms) with
  | Some overhead, Some off, Some on_ ->
      Format.fprintf ppf
        "@,collector:   %8.1f ms on / %.1f ms off  (%+.1f%% overhead)" on_ off
        (100. *. overhead)
  | _ -> ());
  Format.fprintf ppf "@]"
