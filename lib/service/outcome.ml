(* What running a job produced.  The deterministic payload is a flat
   (name, value) metric list in a fixed, runner-chosen order; wall time
   rides alongside but is excluded from the result hash, so outcomes
   are comparable across machines, domain counts and cache hits. *)

type status = Done | Failed of string | Timed_out | Cancelled

type t = { status : status; metrics : (string * float) list; wall_ms : float }

let done_ ?(wall_ms = 0.) metrics = { status = Done; metrics; wall_ms }
let failed ?(wall_ms = 0.) msg = { status = Failed msg; metrics = []; wall_ms }
let timed_out ~wall_ms = { status = Timed_out; metrics = []; wall_ms }
let cancelled = { status = Cancelled; metrics = []; wall_ms = 0. }

let status_to_json = function
  | Done -> Json.Str "done"
  | Failed msg -> Json.Obj [ ("failed", Json.Str msg) ]
  | Timed_out -> Json.Str "timed-out"
  | Cancelled -> Json.Str "cancelled"

let status_of_json = function
  | Json.Str "done" -> Ok Done
  | Json.Str "timed-out" -> Ok Timed_out
  | Json.Str "cancelled" -> Ok Cancelled
  | Json.Obj [ ("failed", Json.Str msg) ] -> Ok (Failed msg)
  | _ -> Error "outcome: bad status"

(* The hashed part: status + metrics, wall time deliberately left out. *)
let deterministic_json t =
  Json.Obj
    [
      ("status", status_to_json t.status);
      ( "metrics",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) t.metrics) );
    ]

let result_hash t = Digest.to_hex (Digest.string (Json.to_string (deterministic_json t)))

let to_json t =
  match deterministic_json t with
  | Json.Obj fields -> Json.Obj (fields @ [ ("wall_ms", Json.Num t.wall_ms) ])
  | _ -> assert false

let of_json v =
  match v with
  | Json.Obj _ -> (
      match Json.member "status" v with
      | None -> Error "outcome: missing status"
      | Some status_v ->
          Result.bind (status_of_json status_v) (fun status ->
              match Json.member "metrics" v with
              | Some (Json.Obj fields) -> (
                  try
                    let metrics =
                      List.map (fun (k, value) -> (k, Json.to_num value)) fields
                    in
                    let wall_ms =
                      match Json.member "wall_ms" v with
                      | Some (Json.Num f) -> f
                      | _ -> 0.
                    in
                    Ok { status; metrics; wall_ms }
                  with Json.Parse_error msg -> Error ("outcome: " ^ msg))
              | Some _ -> Error "outcome: \"metrics\" must be an object"
              | None -> Error "outcome: missing \"metrics\""))
  | _ -> Error "outcome: expected an object"

let metric t name = List.assoc_opt name t.metrics

let is_done t = t.status = Done

let pp ppf t =
  match t.status with
  | Done ->
      Format.fprintf ppf "done (%.1f ms)" t.wall_ms;
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%g" k v) t.metrics
  | Failed msg -> Format.fprintf ppf "FAILED: %s" msg
  | Timed_out -> Format.fprintf ppf "TIMED OUT after %.1f ms" t.wall_ms
  | Cancelled -> Format.fprintf ppf "cancelled"
