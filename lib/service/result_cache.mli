(** Content-addressed result cache: {!Job.hash} → {!Outcome.t},
    LRU-bounded, safe to share across the worker domains of a batch.
    Repeated sweep points — the common case in design-space exploration
    — become cache hits instead of solver runs. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val find : t -> string -> Outcome.t option
(** Lookup by job hash; counts a hit or a miss, refreshes recency. *)

val store : t -> string -> Outcome.t -> bool
(** Insert (or refresh) an outcome; evicts the least recently used
    entry beyond capacity and returns [true] when that happened (the
    caller may want to emit a [cache_evicted] telemetry event).  Store
    only deterministic outcomes — the cache does not distinguish a
    [Failed] produced by the job from one produced by the
    environment. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
val hit_rate : stats -> float
(** Hits over lookups; [0.] before any lookup. *)

val reset_counters : t -> unit
(** Zero the hit/miss/eviction counters, keep the entries — used
    between the cold and warm arms of the service bench. *)

val pp_stats : Format.formatter -> stats -> unit
