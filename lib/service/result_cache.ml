(* Content-addressed result cache: job hash -> outcome, LRU-bounded,
   shared across the worker domains of a batch (hence the mutex — the
   table and the recency list must move together).  Hit/miss counters
   feed telemetry and the service bench's warm-replay measurement. *)

(* Evictions happen on worker domains mid-batch, where nobody is
   looking at [stats]; the registry counter makes them visible to
   serve-stats and every other metrics consumer as they happen.  Lazy
   so tools that never build a cache keep it out of their traces. *)
let evictions_total = lazy (Noc_obs.Metrics.counter "noc_cache_evictions_total")

type entry = { key : string; mutable outcome : Outcome.t }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  (* Most-recent first.  A plain list is fine: capacities are small
     (hundreds), and every operation already takes the mutex. *)
  mutable recency : entry list;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Result_cache.create: capacity < 1";
  ignore (Lazy.force evictions_total);
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    recency = [];
    hits = 0;
    misses = 0;
    evictions = 0;
    mutex = Mutex.create ();
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let touch t entry =
  t.recency <- entry :: List.filter (fun e -> e.key <> entry.key) t.recency

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some entry ->
          t.hits <- t.hits + 1;
          touch t entry;
          Some entry.outcome
      | None ->
          t.misses <- t.misses + 1;
          None)

let store t key outcome =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some entry ->
          entry.outcome <- outcome;
          touch t entry;
          false
      | None ->
          let entry = { key; outcome } in
          Hashtbl.replace t.table key entry;
          touch t entry;
          if Hashtbl.length t.table > t.capacity then begin
            match List.rev t.recency with
            | [] -> assert false
            | oldest :: _ ->
                Hashtbl.remove t.table oldest.key;
                t.recency <- List.filter (fun e -> e.key <> oldest.key) t.recency;
                t.evictions <- t.evictions + 1;
                Noc_obs.Metrics.incr (Lazy.force evictions_total);
                true
          end
          else false)

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
      })

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let reset_counters t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let pp_stats ppf s =
  Format.fprintf ppf "%d hit%s / %d miss%s (%.0f%%), %d entr%s, %d eviction%s"
    s.hits
    (if s.hits = 1 then "" else "s")
    s.misses
    (if s.misses = 1 then "" else "es")
    (100. *. hit_rate s)
    s.entries
    (if s.entries = 1 then "y" else "ies")
    s.evictions
    (if s.evictions = 1 then "" else "s")
