(* Pure job execution: Job.t -> metrics.  Everything here is a
   deterministic function of the job alone — the design is synthesized
   or parsed fresh, the solver mutates only that private copy, and no
   module-global state is touched — so the same job returns the same
   metrics on any domain, in any order, on any machine.  That property
   is what the batch differential test pins down. *)

open Noc_model

let ( let* ) = Result.bind

let build_network = function
  | Job.Inline text -> Io.load text
  | Job.Benchmark { name; n_switches; max_degree } -> (
      match Noc_benchmarks.Registry.find name with
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %S (try: %s)" name
               (String.concat ", " Noc_benchmarks.Registry.names))
      | Some spec ->
          let traffic = spec.Noc_benchmarks.Spec.build () in
          if n_switches < 1 then Error "switches must be >= 1"
          else if n_switches > Traffic.n_cores traffic then
            Error
              (Printf.sprintf "%s has %d cores; switch count must not exceed that"
                 name (Traffic.n_cores traffic))
          else
            let options =
              {
                Noc_synth.Custom.default_options with
                Noc_synth.Custom.max_out_degree = max_degree;
                max_in_degree = max_degree;
              }
            in
            Noc_synth.Custom.synthesize ~options traffic ~n_switches)

let power_metrics net =
  let report = Noc_power.Report.of_network net in
  [
    ("power_mw", report.Noc_power.Report.total_power_mw);
    ("area_mm2", report.Noc_power.Report.total_area_mm2);
  ]

let shape_metrics net =
  let topo = Network.topology net in
  [
    ("n_switches", float_of_int (Topology.n_switches topo));
    ("n_links", float_of_int (Topology.n_links topo));
    ("total_vcs", float_of_int (Topology.total_vcs topo));
  ]

let run_removal ~heuristic ~directions ~resource net =
  let report = Noc_deadlock.Removal.run ~heuristic ~directions ~resource net in
  if not report.Noc_deadlock.Removal.deadlock_free then
    Error "removal hit its iteration cap"
  else
    Ok
      ([
         ("iterations", float_of_int report.Noc_deadlock.Removal.iterations);
         ("vcs_added", float_of_int report.Noc_deadlock.Removal.vcs_added);
       ]
      @ shape_metrics net @ power_metrics net)

let run_ordering ~strategy net =
  let report = Noc_deadlock.Resource_ordering.apply ~strategy net in
  Ok
    ([
       ("vcs_added", float_of_int report.Noc_deadlock.Resource_ordering.vcs_added);
       ( "classes_used",
         float_of_int report.Noc_deadlock.Resource_ordering.classes_used );
     ]
    @ shape_metrics net @ power_metrics net)

let run_sweep (job : Job.t) =
  match job.Job.design with
  | Job.Inline _ -> Error "sweep jobs need a registry benchmark, not an inline design"
  | Job.Benchmark { name; n_switches; max_degree = _ } -> (
      match Noc_benchmarks.Registry.find name with
      | None -> Error (Printf.sprintf "unknown benchmark %S" name)
      | Some spec ->
          let p = Noc_experiments.Sweep.evaluate spec ~n_switches in
          let v prefix (variant : Noc_experiments.Sweep.variant) =
            [
              (prefix ^ "_vcs_added", float_of_int variant.Noc_experiments.Sweep.vcs_added);
              (prefix ^ "_power_mw", variant.Noc_experiments.Sweep.power_mw);
              (prefix ^ "_area_mm2", variant.Noc_experiments.Sweep.area_mm2);
            ]
          in
          Ok
            ([
               ("n_flows", float_of_int p.Noc_experiments.Sweep.n_flows);
               ( "initially_deadlock_free",
                 if p.Noc_experiments.Sweep.initially_deadlock_free then 1. else 0. );
               ( "removal_iterations",
                 float_of_int p.Noc_experiments.Sweep.removal_iterations );
             ]
            @ v "baseline" p.Noc_experiments.Sweep.baseline
            @ v "removal" p.Noc_experiments.Sweep.removal
            @ v "ordering" p.Noc_experiments.Sweep.ordering
            @ v "ordering_hop" p.Noc_experiments.Sweep.ordering_hop))

(* Latency percentile over a sorted array: nearest-rank, so the result
   is always an observed (integer-cycle) latency and platform-exact. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    float_of_int sorted.(max 0 (min (n - 1) i))

(* A simulation is a deterministic function of the job: the design is
   prepared (nothing / removal / ordering) on the private copy, the
   seeded workload is generated, and the engine's Deliver events give
   per-packet latencies for the percentile metrics.  A deadlock is a
   measurement, not a failure: the outcome is [Done] with
   [deadlocked = 1] and the certificate summarized, so campaigns can
   treat deadlocks as data and cache them like any other result. *)
let run_simulate ~prepare ~workload ~buffer_depth ~max_cycles net =
  Noc_obs.Trace.with_span "sim.workload"
    ~attrs:
      [
        ("kind", Noc_obs.Trace.Str (Noc_benchmarks.Workloads.kind workload));
        ("prepare", Noc_obs.Trace.Str (Job.prepare_name prepare));
      ]
  @@ fun _span ->
  let* prep_metrics =
    match prepare with
    | Job.As_is -> Ok [ ("vcs_added", 0.) ]
    | Job.Removal_first ->
        let report = Noc_deadlock.Removal.run net in
        if not report.Noc_deadlock.Removal.deadlock_free then
          Error "removal hit its iteration cap"
        else
          Ok
            [
              ( "vcs_added",
                float_of_int report.Noc_deadlock.Removal.vcs_added );
            ]
    | Job.Ordering_first ->
        let report =
          Noc_deadlock.Resource_ordering.apply
            ~strategy:Noc_deadlock.Resource_ordering.Hop_index net
        in
        Ok
          [
            ( "vcs_added",
              float_of_int report.Noc_deadlock.Resource_ordering.vcs_added );
          ]
  in
  let cdg_cyclic = not (Noc_deadlock.Removal.is_deadlock_free net) in
  let packets = Noc_benchmarks.Workloads.generate net workload in
  let by_id = Hashtbl.create (List.length packets) in
  List.iter
    (fun (p : Noc_sim.Packet.t) ->
      Hashtbl.replace by_id p.Noc_sim.Packet.id
        (p.Noc_sim.Packet.inject_at, p.Noc_sim.Packet.length))
    packets;
  let latencies = ref [] in
  let flits_delivered = ref 0 in
  let on_event = function
    | Noc_sim.Trace.Deliver { cycle; packet } -> (
        match Hashtbl.find_opt by_id packet with
        | Some (inject_at, length) ->
            latencies := (cycle - inject_at) :: !latencies;
            flits_delivered := !flits_delivered + length
        | None -> ())
    | _ -> ()
  in
  let config =
    { Noc_sim.Engine.default_config with buffer_depth; max_cycles }
  in
  let outcome = Noc_sim.Engine.run ~config ~on_event net packets in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let n_lat = Array.length lat in
  let avg_latency =
    if n_lat = 0 then 0.
    else
      float_of_int (Array.fold_left ( + ) 0 lat) /. float_of_int n_lat
  in
  let flits_offered =
    List.fold_left
      (fun acc (p : Noc_sim.Packet.t) -> acc + p.Noc_sim.Packet.length)
      0 packets
  in
  let completed, deadlocked, timed_out =
    match outcome with
    | Noc_sim.Engine.Completed _ -> (1., 0., 0.)
    | Noc_sim.Engine.Deadlocked _ -> (0., 1., 0.)
    | Noc_sim.Engine.Timed_out _ -> (0., 0., 1.)
  in
  let cycles =
    match outcome with
    | Noc_sim.Engine.Completed s | Noc_sim.Engine.Timed_out s ->
        s.Noc_sim.Stats.cycles
    | Noc_sim.Engine.Deadlocked d -> d.Noc_sim.Engine.cycle
  in
  let certified, waits_for_len, blocked, in_net =
    match outcome with
    | Noc_sim.Engine.Deadlocked d ->
        ( (match d.Noc_sim.Engine.waits_for_cycle with
          | Some _ -> 1.
          | None -> 0.),
          (match d.Noc_sim.Engine.waits_for_cycle with
          | Some ids -> float_of_int (List.length ids)
          | None -> 0.),
          float_of_int (List.length d.Noc_sim.Engine.blocked_packets),
          float_of_int d.Noc_sim.Engine.in_network_flits )
    | Noc_sim.Engine.Completed _ | Noc_sim.Engine.Timed_out _ ->
        (0., 0., 0., 0.)
  in
  let throughput =
    if cycles = 0 then 0.
    else float_of_int !flits_delivered /. float_of_int cycles
  in
  Ok
    ([
       ("completed", completed);
       ("deadlocked", deadlocked);
       ("timed_out", timed_out);
       ("cdg_cyclic", if cdg_cyclic then 1. else 0.);
       ("certified", certified);
       ("cycles", float_of_int cycles);
       ("packets", float_of_int (List.length packets));
       ("flits_offered", float_of_int flits_offered);
       ("delivered", float_of_int n_lat);
       ("flits_delivered", float_of_int !flits_delivered);
       ("throughput", throughput);
       ("avg_latency", avg_latency);
       ("p50_latency", percentile lat 0.50);
       ("p95_latency", percentile lat 0.95);
       ("p99_latency", percentile lat 0.99);
       ("max_latency", percentile lat 1.0);
       ("blocked_packets", blocked);
       ("in_network_flits", in_net);
       ("waits_for_len", waits_for_len);
     ]
    @ prep_metrics @ shape_metrics net @ power_metrics net)

let metrics (job : Job.t) =
  match job.Job.method_ with
  | Job.Sweep -> run_sweep job
  | Job.Removal { heuristic; directions; resource } ->
      let* net = build_network job.Job.design in
      run_removal ~heuristic ~directions ~resource net
  | Job.Resource_ordering { strategy } ->
      let* net = build_network job.Job.design in
      run_ordering ~strategy net
  | Job.Simulate { prepare; workload; buffer_depth; max_cycles } ->
      let* net = build_network job.Job.design in
      run_simulate ~prepare ~workload ~buffer_depth ~max_cycles net

let execute job =
  let t0 = Unix.gettimeofday () in
  let result =
    try metrics job with
    | Failure msg -> Error msg
    | Invalid_argument msg -> Error msg
  in
  let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  match result with
  | Ok metrics -> Outcome.done_ ~wall_ms metrics
  | Error msg -> Outcome.failed ~wall_ms msg
