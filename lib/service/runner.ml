(* Pure job execution: Job.t -> metrics.  Everything here is a
   deterministic function of the job alone — the design is synthesized
   or parsed fresh, the solver mutates only that private copy, and no
   module-global state is touched — so the same job returns the same
   metrics on any domain, in any order, on any machine.  That property
   is what the batch differential test pins down. *)

open Noc_model

let ( let* ) = Result.bind

let build_network = function
  | Job.Inline text -> Io.load text
  | Job.Benchmark { name; n_switches; max_degree } -> (
      match Noc_benchmarks.Registry.find name with
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %S (try: %s)" name
               (String.concat ", " Noc_benchmarks.Registry.names))
      | Some spec ->
          let traffic = spec.Noc_benchmarks.Spec.build () in
          if n_switches < 1 then Error "switches must be >= 1"
          else if n_switches > Traffic.n_cores traffic then
            Error
              (Printf.sprintf "%s has %d cores; switch count must not exceed that"
                 name (Traffic.n_cores traffic))
          else
            let options =
              {
                Noc_synth.Custom.default_options with
                Noc_synth.Custom.max_out_degree = max_degree;
                max_in_degree = max_degree;
              }
            in
            Noc_synth.Custom.synthesize ~options traffic ~n_switches)

let power_metrics net =
  let report = Noc_power.Report.of_network net in
  [
    ("power_mw", report.Noc_power.Report.total_power_mw);
    ("area_mm2", report.Noc_power.Report.total_area_mm2);
  ]

let shape_metrics net =
  let topo = Network.topology net in
  [
    ("n_switches", float_of_int (Topology.n_switches topo));
    ("n_links", float_of_int (Topology.n_links topo));
    ("total_vcs", float_of_int (Topology.total_vcs topo));
  ]

let run_removal ~heuristic ~directions ~resource net =
  let report = Noc_deadlock.Removal.run ~heuristic ~directions ~resource net in
  if not report.Noc_deadlock.Removal.deadlock_free then
    Error "removal hit its iteration cap"
  else
    Ok
      ([
         ("iterations", float_of_int report.Noc_deadlock.Removal.iterations);
         ("vcs_added", float_of_int report.Noc_deadlock.Removal.vcs_added);
       ]
      @ shape_metrics net @ power_metrics net)

let run_ordering ~strategy net =
  let report = Noc_deadlock.Resource_ordering.apply ~strategy net in
  Ok
    ([
       ("vcs_added", float_of_int report.Noc_deadlock.Resource_ordering.vcs_added);
       ( "classes_used",
         float_of_int report.Noc_deadlock.Resource_ordering.classes_used );
     ]
    @ shape_metrics net @ power_metrics net)

let run_sweep (job : Job.t) =
  match job.Job.design with
  | Job.Inline _ -> Error "sweep jobs need a registry benchmark, not an inline design"
  | Job.Benchmark { name; n_switches; max_degree = _ } -> (
      match Noc_benchmarks.Registry.find name with
      | None -> Error (Printf.sprintf "unknown benchmark %S" name)
      | Some spec ->
          let p = Noc_experiments.Sweep.evaluate spec ~n_switches in
          let v prefix (variant : Noc_experiments.Sweep.variant) =
            [
              (prefix ^ "_vcs_added", float_of_int variant.Noc_experiments.Sweep.vcs_added);
              (prefix ^ "_power_mw", variant.Noc_experiments.Sweep.power_mw);
              (prefix ^ "_area_mm2", variant.Noc_experiments.Sweep.area_mm2);
            ]
          in
          Ok
            ([
               ("n_flows", float_of_int p.Noc_experiments.Sweep.n_flows);
               ( "initially_deadlock_free",
                 if p.Noc_experiments.Sweep.initially_deadlock_free then 1. else 0. );
               ( "removal_iterations",
                 float_of_int p.Noc_experiments.Sweep.removal_iterations );
             ]
            @ v "baseline" p.Noc_experiments.Sweep.baseline
            @ v "removal" p.Noc_experiments.Sweep.removal
            @ v "ordering" p.Noc_experiments.Sweep.ordering
            @ v "ordering_hop" p.Noc_experiments.Sweep.ordering_hop))

let metrics (job : Job.t) =
  match job.Job.method_ with
  | Job.Sweep -> run_sweep job
  | Job.Removal { heuristic; directions; resource } ->
      let* net = build_network job.Job.design in
      run_removal ~heuristic ~directions ~resource net
  | Job.Resource_ordering { strategy } ->
      let* net = build_network job.Job.design in
      run_ordering ~strategy net

let execute job =
  let t0 = Unix.gettimeofday () in
  let result =
    try metrics job with
    | Failure msg -> Error msg
    | Invalid_argument msg -> Error msg
  in
  let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  match result with
  | Ok metrics -> Outcome.done_ ~wall_ms metrics
  | Error msg -> Outcome.failed ~wall_ms msg
