(* Client side of noc-wire/1: blocking connect / send / receive over
   the daemon's Unix-domain socket, plus the submit-many helper that
   noc_tool submit and the tests share.  Everything returns [result] —
   a dead socket is an expected condition at this layer, not an
   exception. *)

type t = { fd : Unix.file_descr; dec : Wire.decoder; buf : Bytes.t }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let next_response t =
  let rec loop () =
    match Wire.next t.dec with
    | Error e -> Error (Printf.sprintf "protocol error: %s" e)
    | Ok (Some json) ->
        Result.map_error
          (fun e -> Printf.sprintf "protocol error: %s" e)
          (Wire.response_of_json json)
    | Ok None -> (
        match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read failed: %s" (Unix.error_message e))
        | 0 -> Error "connection closed by server"
        | n ->
            Wire.feed t.dec (Bytes.sub_string t.buf 0 n) ~off:0 ~len:n;
            loop ())
  in
  loop ()

let request t req =
  let data = Wire.encode_request req in
  try
    let len = String.length data in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring t.fd data !off (len - !off)
    done;
    Ok ()
  with Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "write failed: %s" (Unix.error_message e))

let ( let* ) = Result.bind

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message e))
  | () -> (
      let t = { fd; dec = Wire.decoder (); buf = Bytes.create 65536 } in
      match next_response t with
      | Ok (Wire.Hello { protocol }) when protocol = Wire.protocol -> Ok t
      | Ok (Wire.Hello { protocol }) ->
          close t;
          Error
            (Printf.sprintf "server speaks %s, this client speaks %s" protocol
               Wire.protocol)
      | Ok _ ->
          close t;
          Error "server did not open with a hello frame"
      | Error e ->
          close t;
          Error e)

let ping t =
  let* () = request t Wire.Ping in
  match next_response t with
  | Ok Wire.Pong -> Ok ()
  | Ok _ -> Error "unexpected reply to ping"
  | Error e -> Error e

(* Deprecated text report: pre-PR-8 servers only speak [Stats].  New
   code wants the typed [stats] / [metrics] below. *)
let stats_text t =
  let* () = request t Wire.Stats in
  match next_response t with
  | Ok (Wire.Stats_report report) -> Ok report
  | Ok (Wire.Error_msg m) -> Error m
  | Ok _ -> Error "unexpected reply to stats"
  | Error e -> Error e

let metrics t =
  let* () = request t Wire.Metrics in
  match next_response t with
  | Ok (Wire.Metrics_report report) -> Ok report
  | Ok (Wire.Error_msg m) -> Error m
  | Ok _ -> Error "unexpected reply to metrics"
  | Error e -> Error e

let stats t = Result.map (fun r -> r.Wire.mr_stats) (metrics t)

(* Submit every job (id = list index), then collect exactly one reply
   per id, calling [on_result] in submission order (buffering replies
   that complete out of order — same streaming discipline as
   Batch.run).  Job files are small and the server reads eagerly, so
   write-all-then-read cannot deadlock on socket buffers. *)
let submit_all ?corr_prefix t jobs ~on_result =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let replies = Array.make n None in
  let corr i =
    Option.map (fun p -> Printf.sprintf "%s-%d" p i) corr_prefix
  in
  let rec send_all i =
    if i = n then Ok ()
    else
      let* () =
        request t (Wire.Submit { id = i; corr = corr i; job = jobs.(i) })
      in
      send_all (i + 1)
  in
  let* () = send_all 0 in
  let next_to_stream = ref 0 in
  let stream () =
    while
      !next_to_stream < n
      &&
      match replies.(!next_to_stream) with
      | Some reply ->
          on_result !next_to_stream jobs.(!next_to_stream) reply;
          incr next_to_stream;
          true
      | None -> false
    do
      ()
    done
  in
  let rec collect remaining =
    if remaining = 0 then Ok ()
    else
      let* response = next_response t in
      match response with
      | Wire.Result { id; _ } | Wire.Rejected { id; _ }
      | Wire.Overloaded { id; _ }
        when id >= 0 && id < n ->
          if replies.(id) <> None then
            Error (Printf.sprintf "duplicate reply for job %d" id)
          else begin
            replies.(id) <- Some response;
            stream ();
            collect (remaining - 1)
          end
      | Wire.Error_msg m -> Error (Printf.sprintf "server error: %s" m)
      | _ -> Error "reply with an unknown or out-of-range job id"
  in
  let* () = collect n in
  Ok (Array.to_list (Array.map Option.get replies))
