(** Alias of {!Noc_json.Json} (the implementation moved to its own
    dependency-free library so pre-service layers can use it); kept so
    existing [Noc_service.Json] callers and their types keep working
    unchanged. *)

include module type of Noc_json.Json
