(* A job is a self-contained description of one solver request.  Two
   invariants carry the whole subsystem:

   - [to_json] is canonical: fixed field order, every default written
     out explicitly, no float formatting ambiguity.  [of_json] accepts
     the same shape with optional fields defaulted, so
     [of_json (to_json j) = Ok j] for every job.
   - [hash] is the MD5 of the canonical encoding.  Equal jobs hash
     equal on every platform and across processes, which is what makes
     the result cache content-addressed and lets bench baselines pin
     job identities. *)

type design =
  | Benchmark of { name : string; n_switches : int; max_degree : int }
  | Inline of string  (* full noc-design 1 text *)

type prepare = As_is | Removal_first | Ordering_first

type method_ =
  | Removal of {
      heuristic : Noc_deadlock.Removal.heuristic;
      directions : Noc_deadlock.Cost_table.direction list;
      resource : Noc_deadlock.Break_cycle.resource_kind;
    }
  | Resource_ordering of { strategy : Noc_deadlock.Resource_ordering.strategy }
  | Sweep
  | Simulate of {
      prepare : prepare;
      workload : Noc_benchmarks.Workloads.spec;
      buffer_depth : int;
      max_cycles : int;
    }

type t = { design : design; method_ : method_ }

let default_max_degree = 4

let removal_defaults =
  Removal
    {
      heuristic = Noc_deadlock.Removal.Smallest_cycle_first;
      directions = [ Noc_deadlock.Cost_table.Forward; Noc_deadlock.Cost_table.Backward ];
      resource = Noc_deadlock.Break_cycle.Virtual_channel;
    }

let default_buffer_depth = 4
let default_max_cycles = 200_000

let simulate ?(prepare = As_is) ?(buffer_depth = default_buffer_depth)
    ?(max_cycles = default_max_cycles) workload =
  Simulate { prepare; workload; buffer_depth; max_cycles }

(* ------------------------------------------------------------------ *)
(* Canonical JSON                                                      *)
(* ------------------------------------------------------------------ *)

let heuristic_name = function
  | Noc_deadlock.Removal.Smallest_cycle_first -> "smallest"
  | Noc_deadlock.Removal.Any_cycle_first -> "any"

let heuristic_of_name = function
  | "smallest" -> Ok Noc_deadlock.Removal.Smallest_cycle_first
  | "any" -> Ok Noc_deadlock.Removal.Any_cycle_first
  | s -> Error (Printf.sprintf "unknown heuristic %S (want smallest|any)" s)

let directions_name = function
  | [ Noc_deadlock.Cost_table.Forward; Noc_deadlock.Cost_table.Backward ] -> "both"
  | [ Noc_deadlock.Cost_table.Forward ] -> "forward"
  | [ Noc_deadlock.Cost_table.Backward ] -> "backward"
  | _ -> invalid_arg "Job: unrepresentable direction list"

let directions_of_name = function
  | "both" -> Ok [ Noc_deadlock.Cost_table.Forward; Noc_deadlock.Cost_table.Backward ]
  | "forward" -> Ok [ Noc_deadlock.Cost_table.Forward ]
  | "backward" -> Ok [ Noc_deadlock.Cost_table.Backward ]
  | s -> Error (Printf.sprintf "unknown directions %S (want both|forward|backward)" s)

let resource_name = function
  | Noc_deadlock.Break_cycle.Virtual_channel -> "vc"
  | Noc_deadlock.Break_cycle.Physical_link -> "link"

let resource_of_name = function
  | "vc" -> Ok Noc_deadlock.Break_cycle.Virtual_channel
  | "link" -> Ok Noc_deadlock.Break_cycle.Physical_link
  | s -> Error (Printf.sprintf "unknown resource %S (want vc|link)" s)

let strategy_name = function
  | Noc_deadlock.Resource_ordering.Greedy_ordered -> "greedy"
  | Noc_deadlock.Resource_ordering.Hop_index -> "hop-index"

let strategy_of_name = function
  | "greedy" -> Ok Noc_deadlock.Resource_ordering.Greedy_ordered
  | "hop-index" -> Ok Noc_deadlock.Resource_ordering.Hop_index
  | s -> Error (Printf.sprintf "unknown strategy %S (want greedy|hop-index)" s)

let prepare_name = function
  | As_is -> "as-is"
  | Removal_first -> "removal"
  | Ordering_first -> "ordering"

let prepare_of_name = function
  | "as-is" -> Ok As_is
  | "removal" -> Ok Removal_first
  | "ordering" -> Ok Ordering_first
  | s -> Error (Printf.sprintf "unknown prepare %S (want as-is|removal|ordering)" s)

(* Workload specs serialize with the kind tag first and every parameter
   explicit, in a fixed per-kind field order — same canonicality rules
   as the job envelope. *)
let workload_to_json w =
  let open Noc_benchmarks.Workloads in
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  let fields =
    match w with
    | Burst { packet_length; packets_per_flow } ->
        [
          ("packet_length", int packet_length);
          ("packets_per_flow", int packets_per_flow);
        ]
    | Uniform_random { packet_length; duration; rate; seed } ->
        [
          ("packet_length", int packet_length);
          ("duration", int duration);
          ("rate", num rate);
          ("seed", int seed);
        ]
    | Hotspot { packet_length; duration; rate; factor; seed } ->
        [
          ("packet_length", int packet_length);
          ("duration", int duration);
          ("rate", num rate);
          ("factor", num factor);
          ("seed", int seed);
        ]
    | Transpose { packet_length; packets_per_flow; interval } ->
        [
          ("packet_length", int packet_length);
          ("packets_per_flow", int packets_per_flow);
          ("interval", int interval);
        ]
    | Bursty { request_length; response_length; duration; exchanges; idle; seed }
      ->
        [
          ("request_length", int request_length);
          ("response_length", int response_length);
          ("duration", int duration);
          ("exchanges", int exchanges);
          ("idle", int idle);
          ("seed", int seed);
        ]
    | Bandwidth_proportional { packet_length; duration; capacity_mbps; seed } ->
        [
          ("packet_length", int packet_length);
          ("duration", int duration);
          ("capacity_mbps", num capacity_mbps);
          ("seed", int seed);
        ]
  in
  Json.Obj (("kind", Json.Str (kind w)) :: fields)

let design_to_json = function
  | Benchmark { name; n_switches; max_degree } ->
      Json.Obj
        [
          ("benchmark", Json.Str name);
          ("switches", Json.Num (float_of_int n_switches));
          ("max_degree", Json.Num (float_of_int max_degree));
        ]
  | Inline text -> Json.Obj [ ("inline", Json.Str text) ]

(* Omitted workload parameters default to the corresponding
   [Workloads.default_*] spec (pinned by a round-trip unit test). *)
let workload_of_json v =
  let open Noc_benchmarks.Workloads in
  let ( let* ) = Result.bind in
  let int_field key default =
    match Json.member key v with
    | None -> Ok default
    | Some (Json.Num _ as n) -> Ok (Json.to_int n)
    | Some _ -> Error (Printf.sprintf "workload.%s must be an integer" key)
  in
  let num_field key default =
    match Json.member key v with
    | None -> Ok default
    | Some (Json.Num f) -> Ok f
    | Some _ -> Error (Printf.sprintf "workload.%s must be a number" key)
  in
  match Json.member "kind" v with
  | Some (Json.Str k) -> (
      match k with
      | "burst" ->
          let* packet_length = int_field "packet_length" 8 in
          let* packets_per_flow = int_field "packets_per_flow" 2 in
          Ok (Burst { packet_length; packets_per_flow })
      | "uniform" ->
          let* packet_length = int_field "packet_length" 4 in
          let* duration = int_field "duration" 512 in
          let* rate = num_field "rate" 0.1 in
          let* seed = int_field "seed" 1 in
          Ok (Uniform_random { packet_length; duration; rate; seed })
      | "hotspot" ->
          let* packet_length = int_field "packet_length" 4 in
          let* duration = int_field "duration" 512 in
          let* rate = num_field "rate" 0.1 in
          let* factor = num_field "factor" 4. in
          let* seed = int_field "seed" 1 in
          Ok (Hotspot { packet_length; duration; rate; factor; seed })
      | "transpose" ->
          let* packet_length = int_field "packet_length" 8 in
          let* packets_per_flow = int_field "packets_per_flow" 4 in
          let* interval = int_field "interval" 32 in
          Ok (Transpose { packet_length; packets_per_flow; interval })
      | "bursty" ->
          let* request_length = int_field "request_length" 1 in
          let* response_length = int_field "response_length" 8 in
          let* duration = int_field "duration" 512 in
          let* exchanges = int_field "exchanges" 2 in
          let* idle = int_field "idle" 64 in
          let* seed = int_field "seed" 1 in
          Ok
            (Bursty
               { request_length; response_length; duration; exchanges; idle; seed })
      | "bandwidth" ->
          let* packet_length = int_field "packet_length" 4 in
          let* duration = int_field "duration" 512 in
          let* capacity_mbps = num_field "capacity_mbps" 1000. in
          let* seed = int_field "seed" 1 in
          Ok (Bandwidth_proportional { packet_length; duration; capacity_mbps; seed })
      | k ->
          Error
            (Printf.sprintf "unknown workload kind %S (want %s)" k
               (String.concat "|" kinds)))
  | Some _ -> Error "workload.kind must be a string"
  | None -> Error "workload: missing \"kind\" field"

let method_to_json = function
  | Removal { heuristic; directions; resource } ->
      ( "removal",
        Json.Obj
          [
            ("heuristic", Json.Str (heuristic_name heuristic));
            ("directions", Json.Str (directions_name directions));
            ("resource", Json.Str (resource_name resource));
          ] )
  | Resource_ordering { strategy } ->
      ("ordering", Json.Obj [ ("strategy", Json.Str (strategy_name strategy)) ])
  | Sweep -> ("sweep", Json.Obj [])
  | Simulate { prepare; workload; buffer_depth; max_cycles } ->
      ( "simulate",
        Json.Obj
          [
            ("prepare", Json.Str (prepare_name prepare));
            ("workload", workload_to_json workload);
            ("buffer_depth", Json.Num (float_of_int buffer_depth));
            ("max_cycles", Json.Num (float_of_int max_cycles));
          ] )

let to_json t =
  let method_name, options = method_to_json t.method_ in
  Json.Obj
    [
      ("design", design_to_json t.design);
      ("method", Json.Str method_name);
      ("options", options);
    ]

let ( let* ) = Result.bind

let design_of_json v =
  match (Json.member "benchmark" v, Json.member "inline" v) with
  | Some _, Some _ -> Error "design: give either \"benchmark\" or \"inline\", not both"
  | Some name, None -> (
      match (name, Json.member "switches" v) with
      | Json.Str name, Some (Json.Num _ as n) -> (
          let n_switches = Json.to_int n in
          match Json.member "max_degree" v with
          | None ->
              Ok (Benchmark { name; n_switches; max_degree = default_max_degree })
          | Some (Json.Num _ as d) ->
              Ok (Benchmark { name; n_switches; max_degree = Json.to_int d })
          | Some _ -> Error "design: \"max_degree\" must be an integer")
      | Json.Str _, _ -> Error "design: missing integer field \"switches\""
      | _, _ -> Error "design: \"benchmark\" must be a string")
  | None, Some (Json.Str text) -> Ok (Inline text)
  | None, Some _ -> Error "design: \"inline\" must be a string (noc-design text)"
  | None, None -> Error "design: needs a \"benchmark\" or \"inline\" field"

let method_of_json name options =
  let str_option key default =
    match Json.member key options with
    | None -> Ok default
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error (Printf.sprintf "options.%s must be a string" key)
  in
  match name with
  | "removal" ->
      let* h = str_option "heuristic" "smallest" in
      let* heuristic = heuristic_of_name h in
      let* d = str_option "directions" "both" in
      let* directions = directions_of_name d in
      let* r = str_option "resource" "vc" in
      let* resource = resource_of_name r in
      Ok (Removal { heuristic; directions; resource })
  | "ordering" ->
      let* s = str_option "strategy" "greedy" in
      let* strategy = strategy_of_name s in
      Ok (Resource_ordering { strategy })
  | "sweep" -> Ok Sweep
  | "simulate" ->
      let* p = str_option "prepare" "as-is" in
      let* prepare = prepare_of_name p in
      let* workload =
        match Json.member "workload" options with
        | None -> Ok Noc_benchmarks.Workloads.default_uniform
        | Some (Json.Obj _ as w) -> workload_of_json w
        | Some _ -> Error "options.workload must be an object"
      in
      let int_option key default =
        match Json.member key options with
        | None -> Ok default
        | Some (Json.Num _ as n) -> Ok (Json.to_int n)
        | Some _ -> Error (Printf.sprintf "options.%s must be an integer" key)
      in
      let* buffer_depth = int_option "buffer_depth" default_buffer_depth in
      let* max_cycles = int_option "max_cycles" default_max_cycles in
      Ok (Simulate { prepare; workload; buffer_depth; max_cycles })
  | s ->
      Error
        (Printf.sprintf "unknown method %S (want removal|ordering|sweep|simulate)" s)

let of_json v =
  match v with
  | Json.Obj _ -> (
      match Json.member "design" v with
      | None -> Error "job: missing \"design\" field"
      | Some design_v -> (
          let* design = design_of_json design_v in
          match Json.member "method" v with
          | None -> Error "job: missing \"method\" field"
          | Some (Json.Str name) ->
              let options =
                Option.value ~default:(Json.Obj []) (Json.member "options" v)
              in
              let* method_ = method_of_json name options in
              Ok { design; method_ }
          | Some _ -> Error "job: \"method\" must be a string"))
  | _ -> Error "job: expected an object"

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

let canonical t = Json.to_string (to_json t)
let hash t = Digest.to_hex (Digest.string (canonical t))
let short_hash t = String.sub (hash t) 0 8

let label t =
  let what =
    match t.design with
    | Benchmark { name; n_switches; _ } -> Printf.sprintf "%s@%d" name n_switches
    | Inline _ -> "inline design"
  in
  let how =
    match t.method_ with
    | Removal _ -> "removal"
    | Resource_ordering _ -> "ordering"
    | Sweep -> "sweep"
    | Simulate { prepare; workload; _ } ->
        Printf.sprintf "sim %s/%s"
          (Noc_benchmarks.Workloads.kind workload)
          (prepare_name prepare)
  in
  Printf.sprintf "%s %s" how what

let pp ppf t = Format.fprintf ppf "%s [%s]" (label t) (short_hash t)

(* ------------------------------------------------------------------ *)
(* Job files                                                           *)
(* ------------------------------------------------------------------ *)

let file_schema = "noc-jobs/1"

let list_to_json jobs =
  Json.Obj
    [
      ("schema", Json.Str file_schema);
      ("jobs", Json.Arr (List.map to_json jobs));
    ]

let list_of_json text =
  let* root = Json.of_string text in
  match Json.member "schema" root with
  | Some (Json.Str s) when s = file_schema -> (
      match Json.member "jobs" root with
      | Some (Json.Arr items) ->
          let rec convert i acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
                match of_json item with
                | Ok job -> convert (i + 1) (job :: acc) rest
                | Error e -> Error (Printf.sprintf "job %d: %s" i e))
          in
          convert 0 [] items
      | Some _ -> Error "\"jobs\" is not an array"
      | None -> Error "missing \"jobs\" array")
  | Some (Json.Str s) ->
      Error (Printf.sprintf "unsupported schema %S (want %S)" s file_schema)
  | Some _ | None ->
      Error (Printf.sprintf "missing \"schema\" field (want %S)" file_schema)
