(* Compatibility alias: the JSON implementation moved to the
   dependency-free [noc_json] library so that layers below the service
   (notably [noc_analysis]) can emit JSON too.  Re-exporting it here
   keeps [Noc_service.Json] working for every existing caller. *)
include Noc_json.Json
