(** Machine-readable batch-service reports (BENCH_service.json) and the
    baseline comparison behind the CI service gate.

    A report records, for one batch over the full benchmark registry:
    the deterministic result hash of every job, the batch wall time at
    each measured domain count, and the warm-replay (fully cached) wall
    time and hit rate.  [host_cores] records what the measuring host
    could actually exercise.

    The gate never compares absolute times across machines: result
    hashes are checked exactly, replay cost and parallel speedup are
    same-host ratios, and the speedup floors are skipped on hosts with
    fewer cores than the arm being judged. *)

type job_entry = { label : string; job_hash : string; result_hash : string }

type timing = { domains : int; wall_ms : float; jobs_per_s : float }

type t = {
  host_cores : int;
  jobs : job_entry list;
  timings : timing list;
  replay_wall_ms : float;
  replay_hit_rate : float;
  collector_off_wall_ms : float option;
      (** 1-domain batch wall time with the series collector stopped;
          [None] on reports predating the telemetry surface. *)
  collector_on_wall_ms : float option;
      (** Same batch with a {!Noc_obs.Series} collector domain sampling
          throughout. *)
}

val schema : string
(** ["bench-service/1"]. *)

val speedup : t -> domains:int -> float option
(** Wall time of the 1-domain arm over the [domains] arm; [None] when
    either arm is missing or degenerate. *)

val collector_overhead : t -> float option
(** [(on - off) / off] when both collector arms are present; the
    same-host cost of always-on telemetry sampling. *)

val to_json : t -> string
(** Stable, diff-friendly JSON. *)

val of_json : string -> (t, string) result

val compare_to_baseline :
  ?speedup_floors:(int * float) list ->
  ?max_replay_fraction:float ->
  ?max_collector_overhead:float ->
  ?collector_slack_ms:float ->
  baseline:t ->
  t ->
  string list
(** [compare_to_baseline ~baseline current] is the list of gate
    violations (empty = pass):
    - a baseline job missing from [current], or its [result_hash]
      differing — the pipeline is deterministic, so any drift is a real
      behaviour change;
    - [current]'s warm-replay hit rate below 1.0;
    - warm replay costing more than [max_replay_fraction] (default
      [0.5]) of the cold 1-domain wall time;
    - for each [(domains, floor)] in [speedup_floors] (default
      [[(2, 1.6); (4, 2.5)]]), the measured speedup falling below
      [floor] — checked only when [current.host_cores >= domains];
    - the series-collector overhead exceeding [max_collector_overhead]
      (default [0.03]) {e and} more than [collector_slack_ms] (default
      [5.]) in absolute terms — skipped when either collector arm is
      absent or the host has a single core (a second domain then
      steals time by construction). *)

val pp : Format.formatter -> t -> unit
