(** Persistent content-addressed result store: {!Job.hash} →
    {!Outcome.t} on disk, LRU-bounded, safe to share across worker
    domains.  The disk-backed successor of {!Result_cache} for the
    [noc serve] daemon — warm hits survive restarts.

    On-disk layout under [root]:
    {v
    objects/ab/cdef0123….json   one object per job hash (sharded)
    index.json                  LRU order, most recent first
    v}

    All writes are write-to-temp + rename, so a crash leaves whole
    files or nothing.  The index is a rebuildable cache: when missing
    or corrupt, the objects directory is rescanned.  An object that
    fails its integrity check at read time (hash mismatch, unparsable
    payload) is deleted and reported as a miss. *)

type t

val create : root:string -> capacity:int -> t
(** Open (creating directories as needed) the store at [root] and load
    its index, dropping entries whose object file is gone.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int
val root : t -> string

val find : t -> string -> Outcome.t option
(** Lookup by job hash; verifies the stored object's schema and hash,
    counts a hit or a miss, refreshes recency. *)

val store : t -> string -> Outcome.t -> bool
(** Write (or refresh) an outcome atomically; evicts the least
    recently used object beyond capacity and returns [true] when that
    happened.  Store only deterministic outcomes.
    @raise Invalid_argument when the key is not a hex hash. *)

val flush : t -> unit
(** Persist the LRU index now (it is also flushed on every store). *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
val hit_rate : stats -> float
val reset_counters : t -> unit
val pp_stats : Format.formatter -> stats -> unit
