(* The noc serve daemon: a select loop on one thread, solver work on
   the domain pool, results streamed back over noc-wire/1 frames.

   Division of labour:

   - The accept/read loop (the thread that called [run]) owns every
     file descriptor: it accepts connections, feeds each connection's
     frame decoder, vets submissions through the lint gate, consults
     the persistent store, and hands cache misses to the pool.  It
     never blocks on a socket (select tells it what is readable) and
     never runs a solver.
   - Worker domains run [Runner.execute], write the outcome into the
     store, and send the result frame themselves — each connection has
     a write mutex, so replies from any domain interleave whole frames,
     never bytes.  A worker never touches the fd table; it only writes
     to fds the loop keeps alive until the connection's pending count
     drops to zero (so a recycled descriptor can never receive another
     client's result).
   - Backpressure is typed, not implicit: when the bounded queue is
     full, [try_submit] fails and the client gets [Overloaded] with
     the current depth instead of a stalled socket.

   Graceful drain ([stop], wired to SIGTERM by noc_tool serve): stop
   accepting, answer new submissions with a draining rejection, wait
   for in-flight jobs, shut the pool down (joining the workers closes
   their trace spans), flush the store index and telemetry, close
   everything, return.  The self-pipe makes [stop] safe to call from a
   signal handler or another domain: it only sets an atomic and writes
   one byte. *)

module Json = Noc_json.Json

(* Lazy, forced in [create]: the serve.* family belongs in a daemon's
   registry from startup (a /metrics report with the counters at zero),
   but not in the traces of CLI runs that never start a server. *)
type serve_metrics = {
  m_jobs : Noc_obs.Metrics.counter;
  m_rejected : Noc_obs.Metrics.counter;
  m_overloaded : Noc_obs.Metrics.counter;
  m_warm_hits : Noc_obs.Metrics.counter;
  m_connections : Noc_obs.Metrics.counter;
  m_scrapes : Noc_obs.Metrics.counter;
  m_queue_depth : Noc_obs.Metrics.gauge;
  m_inflight : Noc_obs.Metrics.gauge;
  (* Per-method request-handling latency (admission time for submit —
     the queue and solver are covered by m_submit_to_result_ms). *)
  m_req_submit : Noc_obs.Metrics.histogram;
  m_req_stats : Noc_obs.Metrics.histogram;
  m_req_metrics : Noc_obs.Metrics.histogram;
  m_req_ping : Noc_obs.Metrics.histogram;
  (* Receipt of the submit frame to the result frame going out. *)
  m_submit_to_result_ms : Noc_obs.Metrics.histogram;
}

let serve_metrics =
  lazy
    (let request_ms name =
       Noc_obs.Metrics.histogram "noc_serve_request_ms"
         ~labels:[ ("method", name) ]
     in
     {
       m_jobs = Noc_obs.Metrics.counter "noc_serve_jobs_total";
       m_rejected = Noc_obs.Metrics.counter "noc_serve_rejected_total";
       m_overloaded = Noc_obs.Metrics.counter "noc_serve_overloaded_total";
       m_warm_hits = Noc_obs.Metrics.counter "noc_serve_warm_hits_total";
       m_connections = Noc_obs.Metrics.counter "noc_serve_connections_total";
       m_scrapes = Noc_obs.Metrics.counter "noc_serve_scrapes_total";
       m_queue_depth = Noc_obs.Metrics.gauge "noc_serve_queue_depth";
       m_inflight = Noc_obs.Metrics.gauge "noc_serve_inflight";
       m_req_submit = request_ms "submit";
       m_req_stats = request_ms "stats";
       m_req_metrics = request_ms "metrics";
       m_req_ping = request_ms "ping";
       m_submit_to_result_ms =
         Noc_obs.Metrics.histogram "noc_serve_submit_to_result_ms";
     })

type config = {
  socket_path : string;
  tcp_port : int option;  (* loopback, for clients that cannot speak AF_UNIX *)
  metrics_addr : int option;
      (* loopback HTTP port serving the Prometheus text exposition *)
  domains : int;
  queue_capacity : int;
  store : Store.t option;
  telemetry : Telemetry.sink;
  lint : bool;
  slos : Noc_obs.Slo.t list;
  series_interval_s : float;
  series_window : int;
}

let default_config =
  {
    socket_path = "noc-serve.sock";
    tcp_port = None;
    metrics_addr = None;
    domains = 2;
    queue_capacity = 64;
    store = None;
    telemetry = Telemetry.null;
    lint = true;
    slos = Noc_obs.Slo.defaults;
    series_interval_s = 1.;
    series_window = 120;
  }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  dec : Wire.decoder;
  write_mutex : Mutex.t;
  alive : bool Atomic.t;  (* false: stop writing (peer gone or protocol error) *)
  mutable eof : bool;  (* true: stop reading; close once pending = 0 *)
  pending : int Atomic.t;  (* jobs in the pool that will write to this fd *)
}

type t = {
  config : config;
  pool : Noc_pool.Pool.t;
  series : Noc_obs.Series.t;
  stopping : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  inflight : int Atomic.t;
  served : int Atomic.t;  (* submit requests answered, however *)
  mutable started_at : float;
}

let create config =
  if config.domains < 1 then invalid_arg "Server.create: domains < 1";
  if config.queue_capacity < 1 then
    invalid_arg "Server.create: queue_capacity < 1";
  ignore (Lazy.force serve_metrics);
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  {
    config;
    pool =
      Noc_pool.Pool.create ~queue_capacity:config.queue_capacity
        ~domains:config.domains ();
    series =
      Noc_obs.Series.create ~interval_s:config.series_interval_s
        ~window:config.series_window ();
    stopping = Atomic.make false;
    wake_r;
    wake_w;
    inflight = Atomic.make 0;
    served = Atomic.make 0;
    started_at = 0.;
  }

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error _ -> ()  (* pipe full: the loop is already awake *)

let stop t =
  Atomic.set t.stopping true;
  wake t

let stopping t = Atomic.get t.stopping

(* ------------------------------------------------------------------ *)
(* Frame writes (any domain)                                           *)
(* ------------------------------------------------------------------ *)

let send conn response =
  if Atomic.get conn.alive then begin
    let data = Wire.encode_response response in
    Mutex.lock conn.write_mutex;
    (try
       let len = String.length data in
       let off = ref 0 in
       while !off < len do
         off := !off + Unix.write_substring conn.fd data !off (len - !off)
       done
     with Unix.Unix_error _ | Sys_error _ -> Atomic.set conn.alive false);
    Mutex.unlock conn.write_mutex
  end

(* ------------------------------------------------------------------ *)
(* The /metrics-style report                                           *)
(* ------------------------------------------------------------------ *)

let typed_stats t =
  {
    Wire.uptime_s = Unix.gettimeofday () -. t.started_at;
    draining = stopping t;
    queue_depth = Noc_pool.Pool.queue_depth t.pool;
    inflight = Atomic.get t.inflight;
    store =
      Option.map
        (fun store ->
          let s = Store.stats store in
          {
            Wire.entries = s.Store.entries;
            hits = s.Store.hits;
            misses = s.Store.misses;
            evictions = s.Store.evictions;
            hit_rate = Store.hit_rate s;
          })
        t.config.store;
  }

(* Snapshot plus the SLO verdict gauges — what both the wire Metrics
   reply and the HTTP exposition serve. *)
let evaluated_snapshot t =
  let metrics = Noc_obs.Metrics.snapshot () in
  let verdicts = Noc_obs.Slo.evaluate t.config.slos metrics in
  (metrics @ Noc_obs.Slo.to_metrics verdicts, verdicts)

let metrics_report t =
  let metrics, verdicts = evaluated_snapshot t in
  Wire.Metrics_report
    {
      Wire.mr_stats = typed_stats t;
      mr_metrics = Noc_obs.Expo.json metrics;
      mr_series = Noc_obs.Series.to_json t.series;
      mr_slo = Noc_obs.Slo.to_json verdicts;
    }

(* The legacy text report behind the deprecated Stats request; the
   line shapes are pinned by the serve-smoke/store-persistence CI
   greps, so it renders from the same typed record the Metrics reply
   carries. *)
let render_stats b (s : Wire.stats) =
  Printf.bprintf b "serve_uptime_seconds %.3f\n" s.Wire.uptime_s;
  Printf.bprintf b "serve_queue_depth %d\n" s.Wire.queue_depth;
  Printf.bprintf b "serve_inflight %d\n" s.Wire.inflight;
  Printf.bprintf b "serve_draining %d\n" (if s.Wire.draining then 1 else 0);
  match s.Wire.store with
  | None -> Printf.bprintf b "store_enabled 0\n"
  | Some st ->
      Printf.bprintf b "store_enabled 1\n";
      Printf.bprintf b "store_entries %d\n" st.Wire.entries;
      Printf.bprintf b "store_hits %d\n" st.Wire.hits;
      Printf.bprintf b "store_misses %d\n" st.Wire.misses;
      Printf.bprintf b "store_evictions %d\n" st.Wire.evictions;
      Printf.bprintf b "store_hit_rate %.6f\n" st.Wire.hit_rate

let render_metric b m =
  match m with
  | Noc_obs.Metrics.Counter { value; _ } ->
      Printf.bprintf b "%s %d\n" (Noc_obs.Metrics.metric_name m) value
  | Noc_obs.Metrics.Gauge { value; _ } ->
      Printf.bprintf b "%s %g\n" (Noc_obs.Metrics.metric_name m) value
  | Noc_obs.Metrics.Histogram { buckets; overflow; count; sum; _ } ->
      let name = Noc_obs.Metrics.metric_name m in
      let cum = ref 0 in
      List.iter
        (fun (le, n) ->
          cum := !cum + n;
          Printf.bprintf b "%s_bucket{le=\"%g\"} %d\n" name le !cum)
        buckets;
      Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" name (!cum + overflow);
      Printf.bprintf b "%s_sum %g\n" name sum;
      Printf.bprintf b "%s_count %d\n" name count

let stats_report t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "# noc serve metrics (%s)\n" Wire.protocol;
  render_stats b (typed_stats t);
  List.iter (render_metric b) (Noc_obs.Metrics.snapshot ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Request handling (the loop thread)                                  *)
(* ------------------------------------------------------------------ *)

let finish_job t conn ~id ?corr ~received_ns ~job ~hash ~cached outcome =
  Noc_obs.Metrics.observe
    (Lazy.force serve_metrics).m_submit_to_result_ms
    (Noc_obs.Clock.ms_between ~start_ns:received_ns
       ~stop_ns:(Noc_obs.Clock.now_ns ()));
  t.config.telemetry.Telemetry.emit
    (Telemetry.job_finished ?corr ~index:id ~job ~outcome ~cache_hit:cached ());
  Atomic.incr t.served;
  send conn (Wire.Result { id; job_hash = hash; outcome; cached })

let handle_submit t conn ~id ?corr job =
  let m = Lazy.force serve_metrics in
  let received_ns = Noc_obs.Clock.now_ns () in
  Noc_obs.Metrics.incr m.m_jobs;
  let hash = Job.hash job in
  if stopping t then begin
    Noc_obs.Metrics.incr m.m_rejected;
    send conn (Wire.Rejected { id; reason = "server is draining" })
  end
  else
    match if t.config.lint then Lint.vet_job job else Ok () with
    | Error reason ->
        Noc_obs.Metrics.incr m.m_rejected;
        t.config.telemetry.Telemetry.emit
          (Telemetry.job_finished ?corr ~index:id ~job
             ~outcome:(Outcome.failed ~wall_ms:0. reason) ~cache_hit:false ());
        send conn (Wire.Rejected { id; reason })
    | Ok () -> (
        match
          Option.bind t.config.store (fun store -> Store.find store hash)
        with
        | Some outcome ->
            Noc_obs.Metrics.incr m.m_warm_hits;
            finish_job t conn ~id ?corr ~received_ns ~job ~hash ~cached:true
              outcome
        | None ->
            let depth = Noc_pool.Pool.queue_depth t.pool in
            Noc_obs.Metrics.set_gauge m.m_queue_depth (float_of_int depth);
            Atomic.incr t.inflight;
            Atomic.incr conn.pending;
            Noc_obs.Metrics.set_gauge m.m_inflight
              (float_of_int (Atomic.get t.inflight));
            let task () =
              Noc_obs.Trace.with_span "serve.job"
                ~attrs:
                  (("job", Noc_obs.Trace.Str (Job.short_hash job))
                  ::
                  (match corr with
                  | None -> []
                  | Some c -> [ ("corr", Noc_obs.Trace.Str c) ]))
              @@ fun _sp ->
              let outcome = Runner.execute job in
              (match t.config.store with
              | Some store when Outcome.is_done outcome ->
                  ignore (Store.store store hash outcome)
              | _ -> ());
              finish_job t conn ~id ?corr ~received_ns ~job ~hash ~cached:false
                outcome;
              Atomic.decr t.inflight;
              Atomic.decr conn.pending;
              wake t
            in
            t.config.telemetry.Telemetry.emit
              (Telemetry.job_submitted ?corr ~index:id ~job ~queue_depth:depth
                 ());
            if not (Noc_pool.Pool.try_submit t.pool task) then begin
              Atomic.decr t.inflight;
              Atomic.decr conn.pending;
              Noc_obs.Metrics.incr m.m_overloaded;
              send conn (Wire.Overloaded { id; queue_depth = depth })
            end)

let handle_request t conn request =
  let m = Lazy.force serve_metrics in
  let request_hist =
    match request with
    | Wire.Ping -> m.m_req_ping
    | Wire.Stats -> m.m_req_stats
    | Wire.Metrics -> m.m_req_metrics
    | Wire.Submit _ -> m.m_req_submit
  in
  let t0 = Noc_obs.Clock.now_ns () in
  (match request with
  | Wire.Ping -> send conn Wire.Pong
  | Wire.Stats -> send conn (Wire.Stats_report (stats_report t))
  | Wire.Metrics -> send conn (metrics_report t)
  | Wire.Submit { id; corr; job } -> handle_submit t conn ~id ?corr job);
  Noc_obs.Metrics.observe request_hist
    (Noc_obs.Clock.ms_between ~start_ns:t0 ~stop_ns:(Noc_obs.Clock.now_ns ()))

let handle_readable t conn buf =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      conn.eof <- true;
      Atomic.set conn.alive false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | 0 ->
      conn.eof <- true;
      t.config.telemetry.Telemetry.emit
        (Telemetry.client_disconnected ~peer:conn.peer)
  | n ->
      Wire.feed conn.dec (Bytes.sub_string buf 0 n) ~off:0 ~len:n;
      let rec drain () =
        match Wire.next conn.dec with
        | Ok None -> ()
        | Ok (Some json) ->
            (match Wire.request_of_json json with
            | Ok request -> handle_request t conn request
            | Error e ->
                (* Bad message in a good frame: answer and carry on —
                   the stream is still synchronized. *)
                send conn (Wire.Error_msg e));
            drain ()
        | Error e ->
            (* Framing is broken; nothing downstream can be trusted. *)
            send conn (Wire.Error_msg e);
            conn.eof <- true;
            Atomic.set conn.alive false
      in
      drain ()

(* ------------------------------------------------------------------ *)
(* Listeners and the loop                                              *)
(* ------------------------------------------------------------------ *)

let unix_listener path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Sys.remove path  (* stale *)
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let tcp_listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let accept t conns lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, addr ->
      Noc_obs.Metrics.incr (Lazy.force serve_metrics).m_connections;
      let peer =
        match addr with
        | Unix.ADDR_UNIX _ -> Printf.sprintf "unix#%d" (Atomic.get t.served)
        | Unix.ADDR_INET (host, port) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
      in
      t.config.telemetry.Telemetry.emit (Telemetry.client_connected ~peer);
      conns :=
        {
          fd;
          peer;
          dec = Wire.decoder ();
          write_mutex = Mutex.create ();
          alive = Atomic.make true;
          eof = false;
          pending = Atomic.make 0;
        }
        :: !conns;
      send (List.hd !conns) (Wire.Hello { protocol = Wire.protocol })

let close_conn conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* One-shot HTTP exchange on the loop thread: accept, read whatever
   request bytes arrived (with a receive timeout so a silent client
   cannot wedge the loop), write the exposition, close.  Scrapers are
   loopback-only (tcp_listener binds 127.0.0.1) and the body is a few
   KiB, so a blocking write is fine here. *)
let handle_scrape t lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ ->
      Noc_obs.Metrics.incr (Lazy.force serve_metrics).m_scrapes;
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
       with Unix.Unix_error _ -> ());
      (try ignore (Unix.read fd (Bytes.create 4096) 0 4096)
       with Unix.Unix_error _ -> ());
      let metrics, _ = evaluated_snapshot t in
      let body = Noc_obs.Expo.text metrics in
      let response =
        Printf.sprintf
          "HTTP/1.0 200 OK\r\n\
           Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          (String.length body) body
      in
      (try
         let len = String.length response in
         let off = ref 0 in
         while !off < len do
           off := !off + Unix.write_substring fd response !off (len - !off)
         done
       with Unix.Unix_error _ | Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let run t =
  (* A client that vanished mid-reply must cost an EPIPE error code,
     not the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  t.started_at <- Unix.gettimeofday ();
  let listeners =
    unix_listener t.config.socket_path
    :: (match t.config.tcp_port with
       | None -> []
       | Some port -> [ tcp_listener port ])
  in
  let metrics_listener = Option.map tcp_listener t.config.metrics_addr in
  let collector = Noc_obs.Series.start t.series in
  (match t.config.store with
  | Some store ->
      t.config.telemetry.Telemetry.emit
        (Telemetry.server_started ~socket:t.config.socket_path
           ~domains:t.config.domains
           ~store_entries:(Store.stats store).Store.entries)
  | None ->
      t.config.telemetry.Telemetry.emit
        (Telemetry.server_started ~socket:t.config.socket_path
           ~domains:t.config.domains ~store_entries:0));
  let conns = ref [] in
  let buf = Bytes.create 65536 in
  let listeners_open = ref true in
  let drain_announced = ref false in
  let close_listeners () =
    if !listeners_open then begin
      listeners_open := false;
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners
    end
  in
  let close_metrics_listener () =
    Option.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      metrics_listener
  in
  let finished = ref false in
  while not !finished do
    if stopping t && not !drain_announced then begin
      drain_announced := true;
      close_listeners ();
      t.config.telemetry.Telemetry.emit
        (Telemetry.drain_started ~inflight:(Atomic.get t.inflight))
    end;
    if stopping t && Atomic.get t.inflight = 0 then finished := true
    else begin
      (* Connections at EOF with no pending replies can be retired;
         everyone else stays selectable. *)
      conns :=
        List.filter
          (fun c ->
            if (c.eof || not (Atomic.get c.alive)) && Atomic.get c.pending = 0
            then begin
              close_conn c;
              false
            end
            else true)
          !conns;
      let read_fds =
        (t.wake_r :: (if !listeners_open then listeners else []))
        @ Option.to_list metrics_listener
        @ List.filter_map
            (fun c -> if c.eof then None else Some c.fd)
            !conns
      in
      match Unix.select read_fds [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          if List.mem t.wake_r readable then
            ignore (Unix.read t.wake_r buf 0 (Bytes.length buf));
          if !listeners_open then
            List.iter
              (fun lfd -> if List.mem lfd readable then accept t conns lfd)
              listeners;
          Option.iter
            (fun lfd -> if List.mem lfd readable then handle_scrape t lfd)
            metrics_listener;
          List.iter
            (fun c ->
              if (not c.eof) && List.mem c.fd readable then
                handle_readable t c buf)
            !conns
    end
  done;
  (* Drained: no job will write again.  Joining the workers closes
     their pool.worker spans, so a --trace stream is balanced. *)
  Noc_obs.Series.stop collector;
  Noc_pool.Pool.shutdown t.pool;
  List.iter close_conn !conns;
  close_listeners ();
  close_metrics_listener ();
  (try Sys.remove t.config.socket_path with Sys_error _ -> ());
  Option.iter Store.flush t.config.store;
  t.config.telemetry.Telemetry.emit
    (Telemetry.server_stopped ~jobs:(Atomic.get t.served)
       ~wall_ms:(1000. *. (Unix.gettimeofday () -. t.started_at)));
  t.config.telemetry.Telemetry.close ();
  Unix.close t.wake_r;
  Unix.close t.wake_w
