(** The batch engine: runs a job list through a {!Noc_pool.Pool},
    consulting the content-addressed {!Result_cache} first and emitting
    {!Telemetry} along the way.

    Determinism contract: the returned list and the [on_result] stream
    are both in submission order, and each job's deterministic payload
    ({!Outcome.result_hash}) is the same for any [domains] setting —
    only wall times and telemetry interleavings vary. *)

type config = {
  domains : int;  (** [1] runs inline in the calling domain. *)
  cache : Result_cache.t option;
      (** Shared across the batch's workers; pass the same cache to a
          second [run] to measure warm replay. *)
  telemetry : Telemetry.sink;  (** Closed when the batch finishes. *)
  timeout_ms : float option;
      (** Per-job budget.  OCaml computations cannot be interrupted, so
          this classifies over-budget jobs as [Timed_out] (withholding
          their metrics) rather than aborting them mid-flight. *)
  fail_fast : bool;
      (** After a failure or timeout, mark not-yet-started jobs
          [Cancelled] instead of running them. *)
  lint : bool;
      (** Vet every job with {!Lint.vet_job} at submission time; a job
          with any error-level static finding is reported as [Failed]
          ("rejected by lint: ...") without ever reaching a worker
          domain. *)
}

val default_config : config
(** 1 domain, no cache, null telemetry, no timeout, no fail-fast,
    lint on. *)

type job_result = {
  index : int;
  job : Job.t;
  outcome : Outcome.t;
  cache_hit : bool;
}

type summary = {
  total : int;
  succeeded : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  cache_hits : int;
  wall_ms : float;
  domains : int;
}

val run :
  ?on_result:(job_result -> unit) ->
  config ->
  Job.t list ->
  job_result list * summary
(** [on_result] is invoked once per job, in submission order, as soon
    as every earlier job has also finished; it may be called from a
    worker domain but never concurrently with itself.
    @raise Invalid_argument when [config.domains < 1]. *)

val pp_summary : Format.formatter -> summary -> unit
