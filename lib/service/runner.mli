(** Deterministic job execution.

    [execute job] synthesizes or parses the job's design privately,
    applies the requested method, and returns the outcome.  It never
    raises: solver and loader errors become [Outcome.Failed].  Because
    nothing escapes the call and no global state is read or written,
    [execute] is safe to run on any {!Noc_pool.Pool} worker and its
    deterministic payload ({!Outcome.result_hash}) is independent of
    domain count and scheduling. *)

val execute : Job.t -> Outcome.t
(** The wall time of the run is recorded in [wall_ms]. *)
