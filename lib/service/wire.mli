(** The noc-wire/1 protocol: length-prefixed JSON frames carrying
    typed requests and responses between [noc_tool serve] and its
    clients ([submit], [serve-stats]).

    A frame is a 4-byte big-endian payload length followed by that
    many bytes of compact JSON.  {!decoder} is incremental — feed it
    whatever the socket produced, in any chunking, and pull complete
    messages out — so the codec survives frames split at arbitrary
    byte boundaries (qcheck-verified).  Message encoding round-trips:
    [request_of_json (request_to_json r) = Ok r], likewise for
    responses. *)

module Json = Noc_json.Json

val protocol : string
(** ["noc-wire/1"], announced by the server's {!Hello} greeting. *)

val max_frame_bytes : int
(** Frames larger than this are rejected as a protocol violation. *)

type request =
  | Submit of { id : int; corr : string option; job : Job.t }
      (** Run [job]; [id] is the per-connection reply-matching index,
          echoed on the reply.  [corr] is an optional {e correlation
          id}: an opaque client-chosen string the server threads into
          its job span and telemetry events, so one request is
          traceable across client log, wire, daemon telemetry, and
          trace stream.  Absent from pre-PR-8 clients. *)
  | Stats  (** Ask for the legacy text metrics report (deprecated). *)
  | Metrics
      (** Ask for the typed {!metrics_report}: stats record, metrics
          snapshot, series window, SLO verdicts. *)
  | Ping

(** Typed server statistics (the {!Metrics} reply): what the one-shot
    [serve-stats] used to scrape out of a text blob. *)

type store_stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  hit_rate : float;
}

type stats = {
  uptime_s : float;
  draining : bool;
  queue_depth : int;
  inflight : int;
  store : store_stats option;  (** [None] when no store is attached. *)
}

type metrics_report = {
  mr_stats : stats;
  mr_metrics : Json.t;
      (** [noc-metrics/1] registry snapshot ({!Noc_obs.Expo.json}),
          including the [noc_slo_ok] verdict gauges. *)
  mr_series : Json.t;  (** [noc-series/1] window ({!Noc_obs.Series}). *)
  mr_slo : Json.t;  (** SLO verdicts ({!Noc_obs.Slo.to_json}). *)
}

type response =
  | Hello of { protocol : string }
      (** Sent by the server on connect, before any request. *)
  | Result of { id : int; job_hash : string; outcome : Outcome.t; cached : bool }
      (** [cached] is true when the outcome came from the persistent
          store rather than a fresh solver run. *)
  | Rejected of { id : int; reason : string }
      (** The admission gate (lint vet) refused the job, or the server
          is draining. *)
  | Overloaded of { id : int; queue_depth : int }
      (** Backpressure: the bounded queue is full; resubmit later. *)
  | Stats_report of string
  | Metrics_report of metrics_report
  | Pong
  | Error_msg of string  (** Protocol-level failure (unparsable frame…). *)

(** {1 Framing} *)

val frame : string -> string
(** Wrap a payload in a length prefix.
    @raise Invalid_argument beyond {!max_frame_bytes}. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> off:int -> len:int -> unit
val feed_string : decoder -> string -> unit

val next : decoder -> (Json.t option, string) result
(** [Ok None] while the buffered bytes hold no complete frame;
    [Error _] on an oversized or non-JSON frame (the connection should
    be dropped — the stream cannot be resynchronized). *)

(** {1 Messages} *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val encode_request : request -> string
(** [frame (to_string (request_to_json r))]. *)

val encode_response : response -> string
