(** The noc-wire/1 protocol: length-prefixed JSON frames carrying
    typed requests and responses between [noc_tool serve] and its
    clients ([submit], [serve-stats]).

    A frame is a 4-byte big-endian payload length followed by that
    many bytes of compact JSON.  {!decoder} is incremental — feed it
    whatever the socket produced, in any chunking, and pull complete
    messages out — so the codec survives frames split at arbitrary
    byte boundaries (qcheck-verified).  Message encoding round-trips:
    [request_of_json (request_to_json r) = Ok r], likewise for
    responses. *)

module Json = Noc_json.Json

val protocol : string
(** ["noc-wire/1"], announced by the server's {!Hello} greeting. *)

val max_frame_bytes : int
(** Frames larger than this are rejected as a protocol violation. *)

type request =
  | Submit of { id : int; job : Job.t }
      (** Run [job]; [id] is the client's correlation id, echoed on the
          reply. *)
  | Stats  (** Ask for the text metrics report. *)
  | Ping

type response =
  | Hello of { protocol : string }
      (** Sent by the server on connect, before any request. *)
  | Result of { id : int; job_hash : string; outcome : Outcome.t; cached : bool }
      (** [cached] is true when the outcome came from the persistent
          store rather than a fresh solver run. *)
  | Rejected of { id : int; reason : string }
      (** The admission gate (lint vet) refused the job, or the server
          is draining. *)
  | Overloaded of { id : int; queue_depth : int }
      (** Backpressure: the bounded queue is full; resubmit later. *)
  | Stats_report of string
  | Pong
  | Error_msg of string  (** Protocol-level failure (unparsable frame…). *)

(** {1 Framing} *)

val frame : string -> string
(** Wrap a payload in a length prefix.
    @raise Invalid_argument beyond {!max_frame_bytes}. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> off:int -> len:int -> unit
val feed_string : decoder -> string -> unit

val next : decoder -> (Json.t option, string) result
(** [Ok None] while the buffered bytes hold no complete frame;
    [Error _] on an oversized or non-JSON frame (the connection should
    be dropped — the stream cannot be resynchronized). *)

(** {1 Messages} *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val encode_request : request -> string
(** [frame (to_string (request_to_json r))]. *)

val encode_response : response -> string
