(* The service's contribution to the static-analysis framework: the
   noc-jobs/1 job-file pass, and the per-job vet the batch engine runs
   before anything reaches the domain pool.  Both use only static
   information — registry metadata, the canonical-encoding round-trip,
   and (for inline designs) a parse plus error-level design lint — so
   vetting a job is cheap compared to running it. *)

open Noc_model
module Diagnostic = Noc_analysis.Diagnostic
module Pass = Noc_analysis.Pass
module Engine = Noc_analysis.Engine

(* Error-level design findings, one compact line each, for embedding
   into a job-level message. *)
let inline_design_errors text =
  match Io.load text with
  | Error e -> Error (Printf.sprintf "inline design does not parse: %s" e)
  | Ok net ->
      let report =
        Engine.analyze
          ~passes:(Noc_analysis.Registry.design_passes ())
          ~label:"inline" (Pass.Design net)
      in
      let errors =
        List.filter
          (fun d -> Diagnostic.severity d = Diag_code.Error)
          report.Engine.diagnostics
      in
      if errors = [] then Ok ()
      else
        Error
          (Printf.sprintf "inline design fails error-level lint: %s"
             (String.concat "; "
                (List.map
                   (fun (d : Diagnostic.t) ->
                     Printf.sprintf "%s %s: %s" d.Diagnostic.code.Diag_code.code
                       (Diagnostic.location_path d.Diagnostic.location)
                       d.Diagnostic.message)
                   errors)))

(* Simulation jobs carry workload and engine parameters the runner
   would only reject at execution time; vetting them statically keeps
   bad sweeps out of the pool.  Saturated injection rates are a
   warning, not an error: the sim still runs, it is just
   injection-limited. *)
let simulate_diagnostics ~location (job : Job.t) =
  match job.Job.method_ with
  | Job.Removal _ | Job.Resource_ordering _ | Job.Sweep -> []
  | Job.Simulate { workload; buffer_depth; max_cycles; _ } ->
      let kind = Noc_benchmarks.Workloads.kind workload in
      let workload_errors =
        List.map
          (fun msg ->
            Diagnostic.v Diag_code.sim_bad_workload location
              (Printf.sprintf "%s workload: %s" kind msg))
          (Noc_benchmarks.Workloads.validate workload)
      in
      let engine_errors =
        (if buffer_depth < 1 then
           [
             Diagnostic.v Diag_code.sim_bad_engine location
               (Printf.sprintf "buffer_depth %d must be at least 1" buffer_depth);
           ]
         else [])
        @
        if max_cycles < 1 then
          [
            Diagnostic.v Diag_code.sim_bad_engine location
              (Printf.sprintf "max_cycles %d must be at least 1" max_cycles);
          ]
        else []
      in
      let saturation =
        match Noc_benchmarks.Workloads.saturation_warning workload with
        | Some msg ->
            [
              Diagnostic.v Diag_code.sim_saturated location
                (Printf.sprintf "%s workload: %s" kind msg)
                ~fix:"lower the injection rate or hotspot factor";
            ]
        | None -> []
      in
      workload_errors @ engine_errors @ saturation

(* One job's static findings (everything except cross-job duplicate
   detection, which needs the whole file).  [hash_stability] takes the
   encoding as an argument so a tampered one can be exercised directly
   — on a well-formed job [Job.to_json] round-trips by construction. *)
let rec job_diagnostics ~location (job : Job.t) =
  let design =
    match job.Job.design with
    | Job.Benchmark { name; n_switches; max_degree } -> (
        match Noc_benchmarks.Registry.find name with
        | None ->
            [
              Diagnostic.v Diag_code.job_bad_design location
                (Printf.sprintf "unknown benchmark %S (try: %s)" name
                   (String.concat ", " Noc_benchmarks.Registry.names));
            ]
        | Some spec ->
            let n_cores = spec.Noc_benchmarks.Spec.n_cores in
            if n_switches < 1 || n_switches > n_cores then
              [
                Diagnostic.v Diag_code.job_bad_design location
                  (Printf.sprintf
                     "switch count %d out of range for %s (1..%d cores)"
                     n_switches name n_cores)
                  ~fix:"pick a switch count between 1 and the core count";
              ]
            else if max_degree < 1 then
              [
                Diagnostic.v Diag_code.job_bad_design location
                  (Printf.sprintf "max_degree %d must be at least 1" max_degree);
              ]
            else [])
    | Job.Inline text -> (
        match inline_design_errors text with
        | Ok () -> []
        | Error msg -> [ Diagnostic.v Diag_code.job_malformed location msg ])
  in
  design
  @ simulate_diagnostics ~location job
  @ hash_stability ~location ~encoded:(Job.to_json job) job

and hash_stability ~location ~encoded (job : Job.t) =
  match Job.of_json encoded with
  | Ok job' when String.equal (Job.hash job) (Job.hash job') -> []
  | Ok _ ->
      [
        Diagnostic.v Diag_code.job_hash_unstable location
          "canonical encoding round-trip changes the job's content hash";
      ]
  | Error e ->
      [
        Diagnostic.v Diag_code.job_hash_unstable location
          (Printf.sprintf
             "canonical encoding does not re-parse: %s (hash identity is \
              unusable)"
             e);
      ]

let vet_job job =
  let errors =
    List.filter
      (fun d -> Diagnostic.severity d = Diag_code.Error)
      (job_diagnostics ~location:Diagnostic.Design job)
  in
  match errors with
  | [] -> Ok ()
  | ds ->
      Error
        (Printf.sprintf "rejected by lint: %s"
           (String.concat "; "
              (List.map
                 (fun (d : Diagnostic.t) ->
                   Printf.sprintf "%s %s" d.Diagnostic.code.Diag_code.code
                     d.Diagnostic.message)
                 ds)))

let file_error_diagnostic ~path msg =
  (* Job.list_of_json prefixes per-entry errors with "job <i>: "; use
     that to anchor the finding at the entry and classify it as a
     malformed job rather than an unusable file. *)
  match Scanf.sscanf_opt msg "job %d: %[\001-\255]" (fun i rest -> (i, rest)) with
  | Some (index, rest) ->
      Diagnostic.v Diag_code.job_malformed
        (Diagnostic.Job { path; index = Some index })
        rest
  | None ->
      Diagnostic.v Diag_code.job_file_unparsable
        (Diagnostic.Job { path; index = None })
        msg

let jobs_pass =
  {
    Pass.name = "jobs";
    prefix = "NOC-JOB";
    scope = Pass.Job_scope;
    severity_floor = Diag_code.Error;
    doc =
      "noc-jobs/1 files parse, reference real designs, hash stably, and \
       simulation jobs carry sane workload/engine parameters (NOC-SIM-*)";
    run =
      (function
      | Pass.Design _ | Pass.Trace_file _ -> []
      | Pass.Job_file { path; text } -> (
          match Job.list_of_json text with
          | Error msg -> [ file_error_diagnostic ~path msg ]
          | Ok jobs ->
              let seen = Hashtbl.create 16 in
              List.concat
                (List.mapi
                   (fun index job ->
                     let location =
                       Diagnostic.Job { path; index = Some index }
                     in
                     let own = job_diagnostics ~location job in
                     let hash = Job.hash job in
                     let dup =
                       match Hashtbl.find_opt seen hash with
                       | Some first ->
                           [
                             Diagnostic.v Diag_code.job_duplicate location
                               (Printf.sprintf
                                  "job %d repeats job %d (hash %s); the \
                                   second run will only exercise the cache"
                                  index first (String.sub hash 0 8))
                               ~fix:"drop the duplicate entry";
                           ]
                       | None ->
                           Hashtbl.add seen hash index;
                           []
                     in
                     own @ dup)
                   jobs)));
  }

let all_passes ?capacity_mbps () =
  Noc_analysis.Registry.design_passes ?capacity_mbps ()
  @ [ jobs_pass; Noc_analysis.Trace_check.pass ]
