(** The service layer's lint surface: the job-file pass ([NOC-JOB-*])
    and the per-job vet that {!Batch} applies before a job reaches the
    domain pool.

    All checks are static — registry metadata, canonical-encoding
    round-trips, and (for inline designs) a parse plus error-level
    design lint — so vetting is cheap relative to running a job. *)

val jobs_pass : Noc_analysis.Pass.t
(** The noc-jobs/1 pass: file parses with the right schema
    ([NOC-JOB-001]), every entry is well-formed ([NOC-JOB-002]),
    duplicate jobs are flagged ([NOC-JOB-003]), designs exist and are
    in range ([NOC-JOB-004]), and content hashes survive a canonical
    round-trip ([NOC-JOB-005]). *)

val vet_job : Job.t -> (unit, string) result
(** The batch gate: [Error] iff the job has any error-level static
    finding (unknown benchmark, impossible switch count, unparsable or
    error-level-lint-failing inline design, unstable hash).  The
    message lists every finding with its code. *)

val job_diagnostics :
  location:Noc_analysis.Diagnostic.location ->
  Job.t ->
  Noc_analysis.Diagnostic.t list
(** One job's static findings, anchored at [location] (duplicate
    detection is whole-file and lives only in {!jobs_pass}). *)

val hash_stability :
  location:Noc_analysis.Diagnostic.location ->
  encoded:Json.t ->
  Job.t ->
  Noc_analysis.Diagnostic.t list
(** The [NOC-JOB-005] recheck at the heart of {!job_diagnostics},
    exposed so a tampered encoding can be exercised directly (a
    well-formed job's own {!Job.to_json} round-trips by
    construction). *)

val all_passes : ?capacity_mbps:float -> unit -> Noc_analysis.Pass.t list
(** The complete pass list for [noc_tool lint]: the design registry,
    {!jobs_pass}, and the noc-trace/1 pass
    ({!Noc_analysis.Trace_check.pass}, [NOC-TRC-*]). *)
