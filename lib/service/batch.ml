(* The batch engine: submit a job list through the domain pool, consult
   the content-addressed cache first, emit telemetry along the way, and
   hand results back in submission order regardless of completion
   order.  The per-job work (Runner.execute) is deterministic and
   isolated, so the only ordering the engine must impose is on the
   result list and the [on_result] stream — both follow submission
   order by construction. *)

type config = {
  domains : int;
  cache : Result_cache.t option;
  telemetry : Telemetry.sink;
  timeout_ms : float option;
  fail_fast : bool;
  lint : bool;
}

let default_config =
  {
    domains = 1;
    cache = None;
    telemetry = Telemetry.null;
    timeout_ms = None;
    fail_fast = false;
    lint = true;
  }

type job_result = {
  index : int;
  job : Job.t;
  outcome : Outcome.t;
  cache_hit : bool;
}

type summary = {
  total : int;
  succeeded : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  cache_hits : int;
  wall_ms : float;
  domains : int;
}

let classify_timeout config ~cache_hit (outcome : Outcome.t) =
  (* OCaml computations cannot be interrupted, so the budget is
     enforced by classification: a run that came back over budget is
     reported as timed out and its metrics are withheld.  Cache hits
     are exempt — their stored wall time belongs to the original run. *)
  match config.timeout_ms with
  | Some limit
    when (not cache_hit)
         && outcome.Outcome.wall_ms > limit
         && outcome.Outcome.status = Outcome.Done ->
      Outcome.timed_out ~wall_ms:outcome.Outcome.wall_ms
  | _ -> outcome

let run ?(on_result = fun _ -> ()) (config : config) jobs =
  if config.domains < 1 then invalid_arg "Batch.run: domains < 1";
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  Noc_obs.Trace.with_span "batch.run"
    ~attrs:
      [
        ("jobs", Noc_obs.Trace.Int n);
        ("domains", Noc_obs.Trace.Int config.domains);
      ]
  @@ fun _run_sp ->
  let t0 = Unix.gettimeofday () in
  (* The lint gate: error-level static findings keep a job out of the
     pool entirely.  Vetting happens here, in the submitting domain, so
     a rejected job never occupies a worker. *)
  let vetoed =
    if config.lint then
      Array.map
        (fun job ->
          match Lint.vet_job job with Ok () -> None | Error msg -> Some msg)
        jobs
    else Array.make n None
  in
  config.telemetry.Telemetry.emit
    (Telemetry.batch_started ~jobs:n ~domains:config.domains
       ~cache_capacity:
         (match config.cache with
         | None -> 0
         | Some cache -> Result_cache.capacity cache));
  let results = Array.make n None in
  let mutex = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref n in
  let next_to_stream = ref 0 in
  let cancelled = Atomic.make false in
  let record index r =
    Mutex.lock mutex;
    results.(index) <- Some r;
    decr remaining;
    (* Stream the completed prefix, in submission order. *)
    while
      !next_to_stream < n
      &&
      match results.(!next_to_stream) with
      | Some r ->
          on_result r;
          incr next_to_stream;
          true
      | None -> false
    do
      ()
    done;
    if !remaining = 0 then Condition.signal all_done;
    Mutex.unlock mutex
  in
  let process index =
    let job = jobs.(index) in
    if Atomic.get cancelled then begin
      let r = { index; job; outcome = Outcome.cancelled; cache_hit = false } in
      config.telemetry.Telemetry.emit
        (Telemetry.job_finished ~index ~job ~outcome:r.outcome ~cache_hit:false ());
      record index r
    end
    else begin
      Noc_obs.Trace.with_span "batch.job"
        ~attrs:
          [
            ("index", Noc_obs.Trace.Int index);
            ("job", Noc_obs.Trace.Str (Job.short_hash job));
          ]
      @@ fun job_sp ->
      config.telemetry.Telemetry.emit (Telemetry.job_started ~index ~job ());
      let hash = Job.hash job in
      let outcome, cache_hit =
        match config.cache with
        | None -> (Runner.execute job, false)
        | Some cache -> (
            let lookup_t0 = Unix.gettimeofday () in
            match Result_cache.find cache hash with
            | Some cached ->
                (* Metrics are the original run's; the wall time is the
                   (near-zero) lookup time of this run. *)
                let wall_ms = 1000. *. (Unix.gettimeofday () -. lookup_t0) in
                ({ cached with Outcome.wall_ms }, true)
            | None ->
                let outcome = Runner.execute job in
                if Outcome.is_done outcome then begin
                  let evicted = Result_cache.store cache hash outcome in
                  if evicted then
                    let s = Result_cache.stats cache in
                    config.telemetry.Telemetry.emit
                      (Telemetry.cache_evicted ~entries:s.Result_cache.entries
                         ~capacity:(Result_cache.capacity cache))
                end;
                (outcome, false))
      in
      let outcome = classify_timeout config ~cache_hit outcome in
      Noc_obs.Trace.add_attr job_sp "cache_hit" (Noc_obs.Trace.Bool cache_hit);
      (match outcome.Outcome.status with
      | Outcome.Failed _ | Outcome.Timed_out ->
          if config.fail_fast then Atomic.set cancelled true
      | Outcome.Done | Outcome.Cancelled -> ());
      config.telemetry.Telemetry.emit
        (Telemetry.job_finished ~index ~job ~outcome ~cache_hit ());
      record index { index; job; outcome; cache_hit }
    end
  in
  (* A vetoed job is finished on the spot: failed outcome, telemetry,
     fail-fast semantics — but no worker ever sees it. *)
  let reject index msg =
    let job = jobs.(index) in
    let outcome = Outcome.failed ~wall_ms:0. msg in
    if config.fail_fast then Atomic.set cancelled true;
    config.telemetry.Telemetry.emit
      (Telemetry.job_finished ~index ~job ~outcome ~cache_hit:false ());
    record index { index; job; outcome; cache_hit = false }
  in
  (if config.domains = 1 then
     (* Sequential arm: no domain is spawned at all — this is the
        reference trajectory the differential tests compare against. *)
     for index = 0 to n - 1 do
       config.telemetry.Telemetry.emit
         (Telemetry.job_submitted ~index ~job:jobs.(index) ~queue_depth:0 ());
       match vetoed.(index) with
       | Some msg -> reject index msg
       | None -> process index
     done
   else
     Noc_pool.Pool.with_pool ~domains:config.domains (fun pool ->
         for index = 0 to n - 1 do
           let depth = Noc_pool.Pool.queue_depth pool in
           config.telemetry.Telemetry.emit (Telemetry.queue_depth ~depth);
           config.telemetry.Telemetry.emit
             (Telemetry.job_submitted ~index ~job:jobs.(index)
                ~queue_depth:depth ());
           match vetoed.(index) with
           | Some msg -> reject index msg
           | None -> Noc_pool.Pool.submit pool (fun () -> process index)
         done;
         Mutex.lock mutex;
         while !remaining > 0 do
           Condition.wait all_done mutex
         done;
         Mutex.unlock mutex));
  let results =
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  in
  let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  let count f = List.length (List.filter f results) in
  let summary =
    {
      total = n;
      succeeded = count (fun r -> r.outcome.Outcome.status = Outcome.Done);
      failed =
        count (fun r ->
            match r.outcome.Outcome.status with
            | Outcome.Failed _ -> true
            | _ -> false);
      timed_out = count (fun r -> r.outcome.Outcome.status = Outcome.Timed_out);
      cancelled = count (fun r -> r.outcome.Outcome.status = Outcome.Cancelled);
      cache_hits = count (fun r -> r.cache_hit);
      wall_ms;
      domains = config.domains;
    }
  in
  let cache_stats =
    match config.cache with
    | Some cache -> Result_cache.stats cache
    | None ->
        {
          Result_cache.hits = summary.cache_hits;
          misses = summary.total - summary.cache_hits - summary.cancelled;
          evictions = 0;
          entries = 0;
        }
  in
  config.telemetry.Telemetry.emit
    (Telemetry.batch_finished ~wall_ms ~succeeded:summary.succeeded
       ~failed:summary.failed ~cancelled:summary.cancelled ~cache_stats);
  config.telemetry.Telemetry.close ();
  (results, summary)

let pp_summary ppf s =
  Format.fprintf ppf
    "%d job%s on %d domain%s in %.1f ms: %d ok, %d failed, %d timed out, %d \
     cancelled, %d cache hit%s"
    s.total
    (if s.total = 1 then "" else "s")
    s.domains
    (if s.domains = 1 then "" else "s")
    s.wall_ms s.succeeded s.failed s.timed_out s.cancelled s.cache_hits
    (if s.cache_hits = 1 then "" else "s")
