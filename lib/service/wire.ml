(* The noc-wire/1 protocol: length-prefixed JSON frames over a byte
   stream (Unix-domain or TCP socket).  A frame is a 4-byte big-endian
   payload length followed by exactly that many bytes of compact JSON.
   Framing and message encoding are independent layers on purpose: the
   decoder accepts bytes in arbitrary chunks (a frame may arrive split
   at any boundary, or many frames in one read), and the message codec
   round-trips through the same canonical Json values as job files, so
   [of_json (to_json m) = Ok m] for every message — the qcheck
   property in test/test_service.ml splits encoded streams at random
   boundaries to pin both layers down. *)

module Json = Noc_json.Json

let protocol = "noc-wire/1"

(* Frames beyond this are a protocol violation, not a big job: the
   largest legitimate payload (a sweep outcome for the biggest
   benchmark) is a few KiB. *)
let max_frame_bytes = 16 * 1024 * 1024

type request =
  | Submit of { id : int; corr : string option; job : Job.t }
  | Stats
  | Metrics
  | Ping

(* The typed stats record behind the [Metrics] request — what
   [Client.stats] returns and [noc_tool top] renders.  The legacy
   [Stats]/[Stats_report] string pair stays one release for old
   clients. *)

type store_stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  hit_rate : float;
}

type stats = {
  uptime_s : float;
  draining : bool;
  queue_depth : int;
  inflight : int;
  store : store_stats option;
}

type metrics_report = {
  mr_stats : stats;
  mr_metrics : Json.t;  (* noc-metrics/1 snapshot (Noc_obs.Expo.json) *)
  mr_series : Json.t;  (* noc-series/1 window (Noc_obs.Series.to_json) *)
  mr_slo : Json.t;  (* SLO verdicts (Noc_obs.Slo.to_json) *)
}

type response =
  | Hello of { protocol : string }
  | Result of { id : int; job_hash : string; outcome : Outcome.t; cached : bool }
  | Rejected of { id : int; reason : string }
  | Overloaded of { id : int; queue_depth : int }
  | Stats_report of string
  | Metrics_report of metrics_report
  | Pong
  | Error_msg of string

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let n = String.length payload in
  if n > max_frame_bytes then invalid_arg "Wire.frame: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let feed d s ~off ~len =
  if len > 0 then begin
    let need = d.len + len in
    if need > Bytes.length d.buf then begin
      let grown = Bytes.create (max need (2 * Bytes.length d.buf)) in
      Bytes.blit d.buf 0 grown 0 d.len;
      d.buf <- grown
    end;
    Bytes.blit_string s off d.buf d.len len;
    d.len <- d.len + len
  end

let feed_string d s = feed d s ~off:0 ~len:(String.length s)

let next d =
  if d.len < 4 then Ok None
  else
    let n = Int32.to_int (Bytes.get_int32_be d.buf 0) in
    if n < 0 || n > max_frame_bytes then
      Error (Printf.sprintf "oversized frame (%d bytes)" n)
    else if d.len < 4 + n then Ok None
    else begin
      let payload = Bytes.sub_string d.buf 4 n in
      let rest = d.len - (4 + n) in
      Bytes.blit d.buf (4 + n) d.buf 0 rest;
      d.len <- rest;
      match Json.of_string payload with
      | Ok v -> Ok (Some v)
      | Error e -> Error (Printf.sprintf "frame payload is not JSON: %s" e)
    end

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let request_to_json = function
  | Submit { id; corr; job } ->
      Json.Obj
        ([ ("type", Json.Str "submit"); ("id", Json.Num (float_of_int id)) ]
        @ (match corr with
          | None -> []
          | Some c -> [ ("corr", Json.Str c) ])
        @ [ ("job", Job.to_json job) ])
  | Stats -> Json.Obj [ ("type", Json.Str "stats") ]
  | Metrics -> Json.Obj [ ("type", Json.Str "metrics") ]
  | Ping -> Json.Obj [ ("type", Json.Str "ping") ]

let ( let* ) = Result.bind

let int_field name v =
  match Json.member name v with
  | Some (Json.Num _ as n) -> Ok (Json.to_int n)
  | Some _ -> Error (Printf.sprintf "%S must be an integer" name)
  | None -> Error (Printf.sprintf "missing integer field %S" name)

let str_field name v =
  match Json.member name v with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S must be a string" name)
  | None -> Error (Printf.sprintf "missing string field %S" name)

let request_of_json v =
  let* type_ = str_field "type" v in
  match type_ with
  | "submit" ->
      let* id = int_field "id" v in
      let* corr =
        (* Optional: pre-PR-8 clients never send it. *)
        match Json.member "corr" v with
        | None -> Ok None
        | Some (Json.Str c) -> Ok (Some c)
        | Some _ -> Error "\"corr\" must be a string"
      in
      let* job =
        match Json.member "job" v with
        | Some job_v -> Job.of_json job_v
        | None -> Error "missing \"job\" field"
      in
      Ok (Submit { id; corr; job })
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "ping" -> Ok Ping
  | s -> Error (Printf.sprintf "unknown request type %S" s)

let response_to_json = function
  | Hello { protocol } ->
      Json.Obj [ ("type", Json.Str "hello"); ("protocol", Json.Str protocol) ]
  | Result { id; job_hash; outcome; cached } ->
      Json.Obj
        [
          ("type", Json.Str "result");
          ("id", Json.Num (float_of_int id));
          ("job", Json.Str job_hash);
          ("outcome", Outcome.to_json outcome);
          ("cached", Json.Bool cached);
        ]
  | Rejected { id; reason } ->
      Json.Obj
        [
          ("type", Json.Str "rejected");
          ("id", Json.Num (float_of_int id));
          ("reason", Json.Str reason);
        ]
  | Overloaded { id; queue_depth } ->
      Json.Obj
        [
          ("type", Json.Str "overloaded");
          ("id", Json.Num (float_of_int id));
          ("queue_depth", Json.Num (float_of_int queue_depth));
        ]
  | Stats_report report ->
      Json.Obj [ ("type", Json.Str "stats"); ("report", Json.Str report) ]
  | Metrics_report { mr_stats; mr_metrics; mr_series; mr_slo } ->
      let stats_json =
        Json.Obj
          ([
             ("uptime_s", Json.Num mr_stats.uptime_s);
             ("draining", Json.Bool mr_stats.draining);
             ("queue_depth", Json.Num (float_of_int mr_stats.queue_depth));
             ("inflight", Json.Num (float_of_int mr_stats.inflight));
           ]
          @
          match mr_stats.store with
          | None -> []
          | Some s ->
              [
                ( "store",
                  Json.Obj
                    [
                      ("entries", Json.Num (float_of_int s.entries));
                      ("hits", Json.Num (float_of_int s.hits));
                      ("misses", Json.Num (float_of_int s.misses));
                      ("evictions", Json.Num (float_of_int s.evictions));
                      ("hit_rate", Json.Num s.hit_rate);
                    ] );
              ])
      in
      Json.Obj
        [
          ("type", Json.Str "metrics");
          ("stats", stats_json);
          ("metrics", mr_metrics);
          ("series", mr_series);
          ("slo", mr_slo);
        ]
  | Pong -> Json.Obj [ ("type", Json.Str "pong") ]
  | Error_msg message ->
      Json.Obj [ ("type", Json.Str "error"); ("message", Json.Str message) ]

let response_of_json v =
  let* type_ = str_field "type" v in
  match type_ with
  | "hello" ->
      let* protocol = str_field "protocol" v in
      Ok (Hello { protocol })
  | "result" ->
      let* id = int_field "id" v in
      let* job_hash = str_field "job" v in
      let* outcome =
        match Json.member "outcome" v with
        | Some o -> Outcome.of_json o
        | None -> Error "missing \"outcome\" field"
      in
      let cached =
        match Json.member "cached" v with Some (Json.Bool b) -> b | _ -> false
      in
      Ok (Result { id; job_hash; outcome; cached })
  | "rejected" ->
      let* id = int_field "id" v in
      let* reason = str_field "reason" v in
      Ok (Rejected { id; reason })
  | "overloaded" ->
      let* id = int_field "id" v in
      let* queue_depth = int_field "queue_depth" v in
      Ok (Overloaded { id; queue_depth })
  | "stats" ->
      let* report = str_field "report" v in
      Ok (Stats_report report)
  | "metrics" ->
      let* stats_v =
        match Json.member "stats" v with
        | Some s -> Ok s
        | None -> Error "missing \"stats\" field"
      in
      let num_field name =
        match Json.member name stats_v with
        | Some (Json.Num n) -> Ok n
        | _ -> Error (Printf.sprintf "missing numeric stats field %S" name)
      in
      let* uptime_s = num_field "uptime_s" in
      let* queue_depth = Result.map int_of_float (num_field "queue_depth") in
      let* inflight = Result.map int_of_float (num_field "inflight") in
      let* draining =
        match Json.member "draining" stats_v with
        | Some (Json.Bool b) -> Ok b
        | _ -> Error "missing boolean stats field \"draining\""
      in
      let* store =
        match Json.member "store" stats_v with
        | None -> Ok None
        | Some store_v ->
            let sfield name =
              match Json.member name store_v with
              | Some (Json.Num n) -> Ok n
              | _ -> Error (Printf.sprintf "missing store field %S" name)
            in
            let* entries = Result.map int_of_float (sfield "entries") in
            let* hits = Result.map int_of_float (sfield "hits") in
            let* misses = Result.map int_of_float (sfield "misses") in
            let* evictions = Result.map int_of_float (sfield "evictions") in
            let* hit_rate = sfield "hit_rate" in
            Ok (Some { entries; hits; misses; evictions; hit_rate })
      in
      let passthrough name =
        Option.value ~default:Json.Null (Json.member name v)
      in
      Ok
        (Metrics_report
           {
             mr_stats = { uptime_s; draining; queue_depth; inflight; store };
             mr_metrics = passthrough "metrics";
             mr_series = passthrough "series";
             mr_slo = passthrough "slo";
           })
  | "pong" -> Ok Pong
  | "error" ->
      let* message = str_field "message" v in
      Ok (Error_msg message)
  | s -> Error (Printf.sprintf "unknown response type %S" s)

let encode_request r = frame (Json.to_string (request_to_json r))
let encode_response r = frame (Json.to_string (response_to_json r))
