(* The noc-wire/1 protocol: length-prefixed JSON frames over a byte
   stream (Unix-domain or TCP socket).  A frame is a 4-byte big-endian
   payload length followed by exactly that many bytes of compact JSON.
   Framing and message encoding are independent layers on purpose: the
   decoder accepts bytes in arbitrary chunks (a frame may arrive split
   at any boundary, or many frames in one read), and the message codec
   round-trips through the same canonical Json values as job files, so
   [of_json (to_json m) = Ok m] for every message — the qcheck
   property in test/test_service.ml splits encoded streams at random
   boundaries to pin both layers down. *)

module Json = Noc_json.Json

let protocol = "noc-wire/1"

(* Frames beyond this are a protocol violation, not a big job: the
   largest legitimate payload (a sweep outcome for the biggest
   benchmark) is a few KiB. *)
let max_frame_bytes = 16 * 1024 * 1024

type request =
  | Submit of { id : int; job : Job.t }
  | Stats
  | Ping

type response =
  | Hello of { protocol : string }
  | Result of { id : int; job_hash : string; outcome : Outcome.t; cached : bool }
  | Rejected of { id : int; reason : string }
  | Overloaded of { id : int; queue_depth : int }
  | Stats_report of string
  | Pong
  | Error_msg of string

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let n = String.length payload in
  if n > max_frame_bytes then invalid_arg "Wire.frame: payload too large";
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let feed d s ~off ~len =
  if len > 0 then begin
    let need = d.len + len in
    if need > Bytes.length d.buf then begin
      let grown = Bytes.create (max need (2 * Bytes.length d.buf)) in
      Bytes.blit d.buf 0 grown 0 d.len;
      d.buf <- grown
    end;
    Bytes.blit_string s off d.buf d.len len;
    d.len <- d.len + len
  end

let feed_string d s = feed d s ~off:0 ~len:(String.length s)

let next d =
  if d.len < 4 then Ok None
  else
    let n = Int32.to_int (Bytes.get_int32_be d.buf 0) in
    if n < 0 || n > max_frame_bytes then
      Error (Printf.sprintf "oversized frame (%d bytes)" n)
    else if d.len < 4 + n then Ok None
    else begin
      let payload = Bytes.sub_string d.buf 4 n in
      let rest = d.len - (4 + n) in
      Bytes.blit d.buf (4 + n) d.buf 0 rest;
      d.len <- rest;
      match Json.of_string payload with
      | Ok v -> Ok (Some v)
      | Error e -> Error (Printf.sprintf "frame payload is not JSON: %s" e)
    end

(* ------------------------------------------------------------------ *)
(* Messages                                                            *)
(* ------------------------------------------------------------------ *)

let request_to_json = function
  | Submit { id; job } ->
      Json.Obj
        [
          ("type", Json.Str "submit");
          ("id", Json.Num (float_of_int id));
          ("job", Job.to_json job);
        ]
  | Stats -> Json.Obj [ ("type", Json.Str "stats") ]
  | Ping -> Json.Obj [ ("type", Json.Str "ping") ]

let ( let* ) = Result.bind

let int_field name v =
  match Json.member name v with
  | Some (Json.Num _ as n) -> Ok (Json.to_int n)
  | Some _ -> Error (Printf.sprintf "%S must be an integer" name)
  | None -> Error (Printf.sprintf "missing integer field %S" name)

let str_field name v =
  match Json.member name v with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S must be a string" name)
  | None -> Error (Printf.sprintf "missing string field %S" name)

let request_of_json v =
  let* type_ = str_field "type" v in
  match type_ with
  | "submit" ->
      let* id = int_field "id" v in
      let* job =
        match Json.member "job" v with
        | Some job_v -> Job.of_json job_v
        | None -> Error "missing \"job\" field"
      in
      Ok (Submit { id; job })
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | s -> Error (Printf.sprintf "unknown request type %S" s)

let response_to_json = function
  | Hello { protocol } ->
      Json.Obj [ ("type", Json.Str "hello"); ("protocol", Json.Str protocol) ]
  | Result { id; job_hash; outcome; cached } ->
      Json.Obj
        [
          ("type", Json.Str "result");
          ("id", Json.Num (float_of_int id));
          ("job", Json.Str job_hash);
          ("outcome", Outcome.to_json outcome);
          ("cached", Json.Bool cached);
        ]
  | Rejected { id; reason } ->
      Json.Obj
        [
          ("type", Json.Str "rejected");
          ("id", Json.Num (float_of_int id));
          ("reason", Json.Str reason);
        ]
  | Overloaded { id; queue_depth } ->
      Json.Obj
        [
          ("type", Json.Str "overloaded");
          ("id", Json.Num (float_of_int id));
          ("queue_depth", Json.Num (float_of_int queue_depth));
        ]
  | Stats_report report ->
      Json.Obj [ ("type", Json.Str "stats"); ("report", Json.Str report) ]
  | Pong -> Json.Obj [ ("type", Json.Str "pong") ]
  | Error_msg message ->
      Json.Obj [ ("type", Json.Str "error"); ("message", Json.Str message) ]

let response_of_json v =
  let* type_ = str_field "type" v in
  match type_ with
  | "hello" ->
      let* protocol = str_field "protocol" v in
      Ok (Hello { protocol })
  | "result" ->
      let* id = int_field "id" v in
      let* job_hash = str_field "job" v in
      let* outcome =
        match Json.member "outcome" v with
        | Some o -> Outcome.of_json o
        | None -> Error "missing \"outcome\" field"
      in
      let cached =
        match Json.member "cached" v with Some (Json.Bool b) -> b | _ -> false
      in
      Ok (Result { id; job_hash; outcome; cached })
  | "rejected" ->
      let* id = int_field "id" v in
      let* reason = str_field "reason" v in
      Ok (Rejected { id; reason })
  | "overloaded" ->
      let* id = int_field "id" v in
      let* queue_depth = int_field "queue_depth" v in
      Ok (Overloaded { id; queue_depth })
  | "stats" ->
      let* report = str_field "report" v in
      Ok (Stats_report report)
  | "pong" -> Ok Pong
  | "error" ->
      let* message = str_field "message" v in
      Ok (Error_msg message)
  | s -> Error (Printf.sprintf "unknown response type %S" s)

let encode_request r = frame (Json.to_string (request_to_json r))
let encode_response r = frame (Json.to_string (response_to_json r))
