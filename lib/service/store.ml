(* Persistent content-addressed result store: the disk-backed
   successor of the in-memory Result_cache, so warm hits survive
   daemon restarts.

   Layout under the root directory:

     objects/ab/cdef0123....json   one object per job hash, sharded on
                                   the first two hex digits
     index.json                    LRU order, most recent first

   Every write is write-to-temp + rename in the destination directory,
   so a crash at any instant leaves either the old file or the new one
   — never a torn object, never a torn index.  The index is a cache of
   the directory listing, not the source of truth: when it is missing
   or stale the objects directory is rescanned, and entries whose
   object file disappeared are dropped at load.  Object payloads are
   self-describing ({schema, job_hash, outcome}); a read that fails the
   integrity check (hash mismatch, unparsable outcome) deletes the
   object and reports a miss, so one corrupted file costs one recompute
   rather than poisoning results. *)

(* Lazy for the same reason as Result_cache: only processes that open
   a store should carry its counter in their metric registry. *)
let evictions_total = lazy (Noc_obs.Metrics.counter "noc_store_evictions_total")
let hits_total = lazy (Noc_obs.Metrics.counter "noc_store_hits_total")
let lookups_total = lazy (Noc_obs.Metrics.counter "noc_store_lookups_total")

let object_schema = "noc-store/1"
let index_schema = "noc-store-index/1"

type t = {
  root : string;
  capacity : int;
  (* Key set and recency move together under the mutex, exactly like
     Result_cache; the disk adds durability, not a new concurrency
     story. *)
  table : (string, unit) Hashtbl.t;
  mutable recency : string list;  (* most recent first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* Paths and atomic writes                                             *)
(* ------------------------------------------------------------------ *)

let is_hex s = String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let valid_key key = String.length key >= 3 && is_hex key

let objects_dir t = Filename.concat t.root "objects"
let index_path t = Filename.concat t.root "index.json"

let shard_dir t key = Filename.concat (objects_dir t) (String.sub key 0 2)

let object_path t key =
  Filename.concat (shard_dir t key)
    (String.sub key 2 (String.length key - 2) ^ ".json")

let ensure_dir path =
  if not (Sys.file_exists path) then
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_atomic ~dir ~path content =
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Index                                                               *)
(* ------------------------------------------------------------------ *)

let index_json t =
  Json.Obj
    [
      ("schema", Json.Str index_schema);
      ("entries", Json.Arr (List.map (fun k -> Json.Str k) t.recency));
    ]

(* Called under the mutex.  Failures (full disk, root removed from
   under us) are swallowed: the index is reconstructible by a rescan,
   so losing a flush must never take a job down with it. *)
let flush_index t =
  try write_atomic ~dir:t.root ~path:(index_path t) (Json.to_string (index_json t) ^ "\n")
  with Sys_error _ -> ()

let load_index path =
  match read_file path with
  | exception Sys_error _ -> None
  | text -> (
      match Json.of_string text with
      | Error _ -> None
      | Ok root -> (
          match (Json.member "schema" root, Json.member "entries" root) with
          | Some (Json.Str s), Some (Json.Arr items) when s = index_schema ->
              let keys =
                List.filter_map
                  (function Json.Str k when valid_key k -> Some k | _ -> None)
                  items
              in
              Some keys
          | _ -> None))

(* Recover keys from the objects directory when the index is missing
   or unreadable; recency order is lost, but no result is. *)
let scan_objects dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | shards ->
      Array.to_list shards
      |> List.concat_map (fun shard ->
             if String.length shard <> 2 || not (is_hex shard) then []
             else
               match Sys.readdir (Filename.concat dir shard) with
               | exception Sys_error _ -> []
               | files ->
                   Array.to_list files
                   |> List.filter_map (fun f ->
                          if Filename.check_suffix f ".json" then
                            Some (shard ^ Filename.chop_suffix f ".json")
                          else None))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ~root ~capacity =
  if capacity < 1 then invalid_arg "Store.create: capacity < 1";
  ignore (Lazy.force evictions_total);
  ensure_dir root;
  let t =
    {
      root;
      capacity;
      table = Hashtbl.create 64;
      recency = [];
      hits = 0;
      misses = 0;
      evictions = 0;
      mutex = Mutex.create ();
    }
  in
  ensure_dir (objects_dir t);
  let indexed =
    match load_index (index_path t) with
    | Some keys -> keys
    | None -> scan_objects (objects_dir t)
  in
  (* Integrity check on load: keep only entries whose object file is
     actually present (newest first, dedup'd); deep validation of the
     payload happens lazily at [find]. *)
  let keys =
    List.filter
      (fun key ->
        (not (Hashtbl.mem t.table key)) && Sys.file_exists (object_path t key)
        && (Hashtbl.replace t.table key ();
            true))
      indexed
  in
  t.recency <- keys;
  t

let capacity t = t.capacity
let root t = t.root

(* ------------------------------------------------------------------ *)
(* Lookup and insert                                                   *)
(* ------------------------------------------------------------------ *)

let touch t key = t.recency <- key :: List.filter (fun k -> k <> key) t.recency

(* Under the mutex.  Drops the entry and its file. *)
let forget t key =
  Hashtbl.remove t.table key;
  t.recency <- List.filter (fun k -> k <> key) t.recency;
  try Sys.remove (object_path t key) with Sys_error _ -> ()

let decode_object ~key text =
  match Json.of_string text with
  | Error e -> Error e
  | Ok root -> (
      match (Json.member "schema" root, Json.member "job_hash" root) with
      | Some (Json.Str s), _ when s <> object_schema ->
          Error (Printf.sprintf "schema %S (want %S)" s object_schema)
      | _, Some (Json.Str h) when h <> key -> Error "job hash mismatch"
      | Some (Json.Str _), Some (Json.Str _) -> (
          match Json.member "outcome" root with
          | Some o -> Outcome.of_json o
          | None -> Error "missing outcome")
      | _ -> Error "missing schema or job_hash")

let find t key =
  Noc_obs.Metrics.incr (Lazy.force lookups_total);
  locked t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        t.misses <- t.misses + 1;
        None
      end
      else
        match read_file (object_path t key) with
        | exception Sys_error _ ->
            forget t key;
            t.misses <- t.misses + 1;
            None
        | text -> (
            match decode_object ~key text with
            | Ok outcome ->
                t.hits <- t.hits + 1;
                Noc_obs.Metrics.incr (Lazy.force hits_total);
                touch t key;
                Some outcome
            | Error _ ->
                (* Corrupt object: evict it so the next run recomputes
                   and rewrites, instead of failing forever. *)
                forget t key;
                flush_index t;
                t.misses <- t.misses + 1;
                None))

let object_json ~key outcome =
  Json.Obj
    [
      ("schema", Json.Str object_schema);
      ("job_hash", Json.Str key);
      ("outcome", Outcome.to_json outcome);
    ]

let store t key outcome =
  if not (valid_key key) then invalid_arg "Store.store: not a hex job hash";
  locked t (fun () ->
      let dir = shard_dir t key in
      ensure_dir dir;
      write_atomic ~dir ~path:(object_path t key)
        (Json.to_string (object_json ~key outcome) ^ "\n");
      if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key ();
      touch t key;
      let evicted =
        if Hashtbl.length t.table > t.capacity then begin
          match List.rev t.recency with
          | [] -> assert false
          | oldest :: _ ->
              forget t oldest;
              t.evictions <- t.evictions + 1;
              Noc_obs.Metrics.incr (Lazy.force evictions_total);
              true
        end
        else false
      in
      flush_index t;
      evicted)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
      })

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0. else float_of_int s.hits /. float_of_int total

let reset_counters t =
  locked t (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let flush t = locked t (fun () -> flush_index t)

let pp_stats ppf s =
  Format.fprintf ppf "%d hit%s / %d miss%s (%.0f%%), %d entr%s on disk, %d eviction%s"
    s.hits
    (if s.hits = 1 then "" else "s")
    s.misses
    (if s.misses = 1 then "" else "es")
    (100. *. hit_rate s)
    s.entries
    (if s.entries = 1 then "y" else "ies")
    s.evictions
    (if s.evictions = 1 then "" else "s")
