(* Structured JSON-lines telemetry.  Events are plain Json objects with
   a fixed envelope (ts, event) and are pushed through a pluggable
   sink; sinks serialize concurrent emits internally, so workers on any
   domain can log without coordination.  Telemetry is observability,
   not results: timestamps and durations in here are free to vary
   between runs while result hashes stay fixed. *)

type sink = { emit : Json.t -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let line v = Json.to_string v

let to_channel oc =
  let mutex = Mutex.create () in
  {
    emit =
      (fun v ->
        let s = line v in
        Mutex.lock mutex;
        output_string oc s;
        output_char oc '\n';
        Mutex.unlock mutex);
    close =
      (fun () ->
        Mutex.lock mutex;
        flush oc;
        Mutex.unlock mutex);
  }

let to_file path =
  let oc = open_out path in
  let inner = to_channel oc in
  { inner with close = (fun () -> inner.close (); close_out oc) }

(* In-memory sink, newest last; for tests and the bench. *)
let memory () =
  let mutex = Mutex.create () in
  let events = ref [] in
  let sink =
    {
      emit =
        (fun v ->
          Mutex.lock mutex;
          events := v :: !events;
          Mutex.unlock mutex);
      close = (fun () -> ());
    }
  in
  let contents () =
    Mutex.lock mutex;
    let evs = List.rev !events in
    Mutex.unlock mutex;
    evs
  in
  (sink, contents)

let tee a b =
  {
    emit = (fun v -> a.emit v; b.emit v);
    close = (fun () -> a.close (); b.close ());
  }

(* ------------------------------------------------------------------ *)
(* Event constructors                                                  *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let event name fields =
  Json.Obj (("ts", Json.Num (now ())) :: ("event", Json.Str name) :: fields)

let job_fields ~index ~job extra =
  ("index", Json.Num (float_of_int index))
  :: ("job", Json.Str (Job.short_hash job))
  :: ("label", Json.Str (Job.label job))
  :: extra

let batch_started ~jobs ~domains ~cache_capacity =
  event "batch_started"
    [
      ("jobs", Json.Num (float_of_int jobs));
      ("domains", Json.Num (float_of_int domains));
      ("cache_capacity", Json.Num (float_of_int cache_capacity));
    ]

let job_submitted ~index ~job ~queue_depth =
  event "job_submitted"
    (job_fields ~index ~job [ ("queue_depth", Json.Num (float_of_int queue_depth)) ])

let job_started ~index ~job =
  event "job_started"
    (job_fields ~index ~job
       [ ("domain", Json.Num (float_of_int (Domain.self () :> int))) ])

let job_finished ~index ~job ~(outcome : Outcome.t) ~cache_hit =
  let status =
    match outcome.Outcome.status with
    | Outcome.Done -> "done"
    | Outcome.Failed _ -> "failed"
    | Outcome.Timed_out -> "timed-out"
    | Outcome.Cancelled -> "cancelled"
  in
  event "job_finished"
    (job_fields ~index ~job
       ([
          ("status", Json.Str status);
          ("wall_ms", Json.Num outcome.Outcome.wall_ms);
          ("cache_hit", Json.Bool cache_hit);
        ]
       @ List.map
           (fun (k, v) -> (k, Json.Num v))
           outcome.Outcome.metrics))

let batch_finished ~wall_ms ~succeeded ~failed ~cancelled ~cache_stats =
  event "batch_finished"
    [
      ("wall_ms", Json.Num wall_ms);
      ("succeeded", Json.Num (float_of_int succeeded));
      ("failed", Json.Num (float_of_int failed));
      ("cancelled", Json.Num (float_of_int cancelled));
      ("cache_hits", Json.Num (float_of_int cache_stats.Result_cache.hits));
      ("cache_misses", Json.Num (float_of_int cache_stats.Result_cache.misses));
      ("cache_hit_rate", Json.Num (Result_cache.hit_rate cache_stats));
    ]
