(* Structured JSON-lines telemetry.  Events are plain Json objects with
   a fixed envelope (ts, event) and are pushed through a pluggable
   sink; sinks serialize concurrent emits internally, so workers on any
   domain can log without coordination.  Telemetry is observability,
   not results: timestamps and durations in here are free to vary
   between runs while result hashes stay fixed.

   The sink type itself lives in the observability layer
   (Noc_obs.Sink) so the span tracer's noc-trace/1 export and this
   event stream share one transport; it is re-exported here with its
   fields, so existing callers see no difference. *)

type sink = Noc_obs.Sink.t = { emit : Json.t -> unit; close : unit -> unit }

let null = Noc_obs.Sink.null
let line = Noc_obs.Sink.line
let to_channel = Noc_obs.Sink.to_channel

(* Atomic by construction: the stream accumulates in a temp file and
   lands at [path] on close, so a killed batch run never leaves a
   truncated half-line. *)
let to_file = Noc_obs.Sink.to_file
let memory = Noc_obs.Sink.memory
let tee = Noc_obs.Sink.tee

(* ------------------------------------------------------------------ *)
(* Event constructors                                                  *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let event name fields =
  Json.Obj (("ts", Json.Num (now ())) :: ("event", Json.Str name) :: fields)

(* [corr] is the wire-level correlation id (Wire.Submit), absent for
   in-process batch jobs and pre-PR-8 clients; when present it ties a
   telemetry line to one wire request end to end. *)
let job_fields ?corr ~index ~job extra =
  ("index", Json.Num (float_of_int index))
  :: ("job", Json.Str (Job.short_hash job))
  :: ("label", Json.Str (Job.label job))
  ::
  (match corr with
  | None -> extra
  | Some c -> ("corr", Json.Str c) :: extra)

let batch_started ~jobs ~domains ~cache_capacity =
  event "batch_started"
    [
      ("jobs", Json.Num (float_of_int jobs));
      ("domains", Json.Num (float_of_int domains));
      ("cache_capacity", Json.Num (float_of_int cache_capacity));
    ]

let job_submitted ?corr ~index ~job ~queue_depth () =
  event "job_submitted"
    (job_fields ?corr ~index ~job
       [ ("queue_depth", Json.Num (float_of_int queue_depth)) ])

let job_started ?corr ~index ~job () =
  event "job_started"
    (job_fields ?corr ~index ~job
       [ ("domain", Json.Num (float_of_int (Domain.self () :> int))) ])

let job_finished ?corr ~index ~job ~(outcome : Outcome.t) ~cache_hit () =
  let status =
    match outcome.Outcome.status with
    | Outcome.Done -> "done"
    | Outcome.Failed _ -> "failed"
    | Outcome.Timed_out -> "timed-out"
    | Outcome.Cancelled -> "cancelled"
  in
  event "job_finished"
    (job_fields ?corr ~index ~job
       ([
          ("status", Json.Str status);
          ("wall_ms", Json.Num outcome.Outcome.wall_ms);
          ("cache_hit", Json.Bool cache_hit);
        ]
       @ List.map
           (fun (k, v) -> (k, Json.Num v))
           outcome.Outcome.metrics))

let queue_depth ~depth =
  event "queue_depth" [ ("depth", Json.Num (float_of_int depth)) ]

let cache_evicted ~entries ~capacity =
  event "cache_evicted"
    [
      ("entries", Json.Num (float_of_int entries));
      ("capacity", Json.Num (float_of_int capacity));
    ]

(* Server lifecycle events: same envelope, same sinks, so a daemon's
   telemetry file interleaves job events with connection and drain
   milestones. *)

let server_started ~socket ~domains ~store_entries =
  event "server_started"
    [
      ("socket", Json.Str socket);
      ("domains", Json.Num (float_of_int domains));
      ("store_entries", Json.Num (float_of_int store_entries));
    ]

let client_connected ~peer = event "client_connected" [ ("peer", Json.Str peer) ]

let client_disconnected ~peer =
  event "client_disconnected" [ ("peer", Json.Str peer) ]

let drain_started ~inflight =
  event "drain_started" [ ("inflight", Json.Num (float_of_int inflight)) ]

let server_stopped ~jobs ~wall_ms =
  event "server_stopped"
    [
      ("jobs", Json.Num (float_of_int jobs)); ("wall_ms", Json.Num wall_ms);
    ]

let batch_finished ~wall_ms ~succeeded ~failed ~cancelled ~cache_stats =
  event "batch_finished"
    [
      ("wall_ms", Json.Num wall_ms);
      ("succeeded", Json.Num (float_of_int succeeded));
      ("failed", Json.Num (float_of_int failed));
      ("cancelled", Json.Num (float_of_int cancelled));
      ("cache_hits", Json.Num (float_of_int cache_stats.Result_cache.hits));
      ("cache_misses", Json.Num (float_of_int cache_stats.Result_cache.misses));
      ("cache_hit_rate", Json.Num (Result_cache.hit_rate cache_stats));
    ]
