(** Machine-readable simulation-campaign reports ([BENCH_sim.json],
    schema ["bench-sim/1"]) and the baseline comparison behind the CI
    sim gate.

    Unlike the removal and service bench schemas, the sim gate splits
    its contract in two: deadlock behaviour is {e hard} — a deadlock on
    a protected or acyclic-CDG design, or one without a certificate,
    fails the gate regardless of any baseline — while latency and
    throughput are compared to the baseline within tolerance bands.
    Simulations are fully deterministic, so packet delivery counts are
    still exact. *)

type entry = {
  label : string;  (** Human label, e.g. ["sim uniform/removal D36_8@14"]. *)
  job_hash : string;  (** Content hash; the baseline matching key. *)
  result_hash : string;  (** Hash of the metrics (wall time excluded). *)
  benchmark : string;
  n_switches : int;
  workload : string;  (** Workload kind, e.g. ["uniform"]. *)
  prepare : string;  (** ["as-is"], ["removal"], or ["ordering"]. *)
  cdg_cyclic : bool;
  deadlocked : bool;
  certified : bool;  (** Deadlock carried a waits-for cycle. *)
  cycles : float;
  packets : float;
  delivered : float;
  avg_latency : float;
  p95_latency : float;
  throughput : float;
  vcs_added : float;
}

type t = {
  entries : entry list;
  slo : Noc_obs.Slo.verdict list;
      (** Campaign-time SLO verdicts; empty (and absent from the JSON)
          when the campaign did not evaluate objectives, so
          pre-existing baselines parse and re-serialize unchanged. *)
}

val schema : string
(** ["bench-sim/1"]. *)

val of_cells : ?slo:Noc_obs.Slo.verdict list -> Campaign.cell list -> t
(** One entry per finished cell; unfinished cells are dropped (they are
    {!Campaign.verify}'s problem, not the report's).  [slo] (default
    empty) records the campaign's objective verdicts. *)

val to_json : t -> string
val of_json : string -> (t, string) result

val invariant_errors : t -> string list
(** The baseline-independent deadlock-freedom checks, one message per
    violated cell.  Also included in {!compare_to_baseline}. *)

val compare_to_baseline :
  ?latency_tolerance:float ->
  ?throughput_tolerance:float ->
  baseline:t ->
  t ->
  string list
(** Empty when the gate passes.  Baseline entries are matched by
    [job_hash]; an identical [result_hash] short-circuits the cell.
    Deadlock flags, delivery counts and added-VC counts must match
    exactly; [avg_latency] and [throughput] may drift within the
    relative tolerances (default [0.25] each).  A baseline cell missing
    from the current report is an error; new cells are allowed. *)

val pp : Format.formatter -> t -> unit
