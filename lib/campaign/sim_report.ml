(* Machine-readable simulation-campaign reports (BENCH_sim.json) and
   the baseline comparison behind the CI sim gate.

   The sim differs from the other bench schemas in what is hard and
   what is soft: deadlock-freedom is an invariant — a protected or
   acyclic design that deadlocks fails the gate outright, baseline or
   no baseline — while latency and throughput get tolerance bands so a
   deliberate workload tweak does not need a lockstep baseline edit.
   Cycle-level counts are deterministic, so drift inside the band still
   means a behaviour change; the band just sizes how much change is
   acceptable without re-pinning. *)

module Json = Noc_json.Json

type entry = {
  label : string;
  job_hash : string;
  result_hash : string;
  benchmark : string;
  n_switches : int;
  workload : string;  (* kind, e.g. "uniform" *)
  prepare : string;  (* "as-is" | "removal" | "ordering" *)
  cdg_cyclic : bool;
  deadlocked : bool;
  certified : bool;
  cycles : float;
  packets : float;
  delivered : float;
  avg_latency : float;
  p95_latency : float;
  throughput : float;
  vcs_added : float;
}

type t = { entries : entry list; slo : Noc_obs.Slo.verdict list }

let schema = "bench-sim/1"

let of_cells ?(slo = []) cells =
  let entry (cell : Campaign.cell) =
    if not (Noc_service.Outcome.is_done cell.Campaign.outcome) then None
    else
      let benchmark, n_switches =
        match cell.Campaign.job.Noc_service.Job.design with
        | Noc_service.Job.Benchmark { name; n_switches; _ } ->
            (name, n_switches)
        | Noc_service.Job.Inline _ -> ("inline", 0)
      in
      let workload, prepare =
        match cell.Campaign.job.Noc_service.Job.method_ with
        | Noc_service.Job.Simulate { workload; prepare; _ } ->
            ( Noc_benchmarks.Workloads.kind workload,
              Noc_service.Job.prepare_name prepare )
        | _ -> ("-", "-")
      in
      let m = Campaign.metric cell in
      Some
        {
          label = Noc_service.Job.label cell.Campaign.job;
          job_hash = Noc_service.Job.hash cell.Campaign.job;
          result_hash = Noc_service.Outcome.result_hash cell.Campaign.outcome;
          benchmark;
          n_switches;
          workload;
          prepare;
          cdg_cyclic = Campaign.cdg_cyclic cell;
          deadlocked = Campaign.deadlocked cell;
          certified = Campaign.certified cell;
          cycles = m "cycles";
          packets = m "packets";
          delivered = m "delivered";
          avg_latency = m "avg_latency";
          p95_latency = m "p95_latency";
          throughput = m "throughput";
          vcs_added = m "vcs_added";
        }
  in
  { entries = List.filter_map entry cells; slo }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json report =
  let entry e =
    Json.Obj
      [
        ("label", Json.Str e.label);
        ("job", Json.Str e.job_hash);
        ("result_hash", Json.Str e.result_hash);
        ("benchmark", Json.Str e.benchmark);
        ("switches", Json.Num (float_of_int e.n_switches));
        ("workload", Json.Str e.workload);
        ("prepare", Json.Str e.prepare);
        ("cdg_cyclic", Json.Num (if e.cdg_cyclic then 1. else 0.));
        ("deadlocked", Json.Num (if e.deadlocked then 1. else 0.));
        ("certified", Json.Num (if e.certified then 1. else 0.));
        ("cycles", Json.Num e.cycles);
        ("packets", Json.Num e.packets);
        ("delivered", Json.Num e.delivered);
        ("avg_latency", Json.Num e.avg_latency);
        ("p95_latency", Json.Num e.p95_latency);
        ("throughput", Json.Num e.throughput);
        ("vcs_added", Json.Num e.vcs_added);
      ]
  in
  (* [slo] is emitted only when present, so reports from campaigns
     that never evaluated objectives — and every pre-existing pinned
     baseline — keep their exact byte shape. *)
  Json.to_string_pretty
    (Json.Obj
       ([
          ("schema", Json.Str schema);
          ("cells", Json.Arr (List.map entry report.entries));
        ]
       @
       match report.slo with
       | [] -> []
       | slo -> [ ("slo", Noc_obs.Slo.to_json slo) ]))
  ^ "\n"

let of_json text =
  match Json.of_string text with
  | Error msg -> Error msg
  | Ok root -> (
      try
        let s = Json.to_str (Json.field "schema" root) in
        if s <> schema then
          Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
        else
          Ok
            {
              entries =
                List.map
                  (fun item ->
                    let flag name = Json.to_num (Json.field name item) > 0.5 in
                    {
                      label = Json.to_str (Json.field "label" item);
                      job_hash = Json.to_str (Json.field "job" item);
                      result_hash = Json.to_str (Json.field "result_hash" item);
                      benchmark = Json.to_str (Json.field "benchmark" item);
                      n_switches = Json.to_int (Json.field "switches" item);
                      workload = Json.to_str (Json.field "workload" item);
                      prepare = Json.to_str (Json.field "prepare" item);
                      cdg_cyclic = flag "cdg_cyclic";
                      deadlocked = flag "deadlocked";
                      certified = flag "certified";
                      cycles = Json.to_num (Json.field "cycles" item);
                      packets = Json.to_num (Json.field "packets" item);
                      delivered = Json.to_num (Json.field "delivered" item);
                      avg_latency = Json.to_num (Json.field "avg_latency" item);
                      p95_latency = Json.to_num (Json.field "p95_latency" item);
                      throughput = Json.to_num (Json.field "throughput" item);
                      vcs_added = Json.to_num (Json.field "vcs_added" item);
                    })
                  (Json.to_list (Json.field "cells" root));
              slo =
                (match Json.member "slo" root with
                | None -> []
                | Some v -> (
                    match Noc_obs.Slo.verdicts_of_json v with
                    | Ok slo -> slo
                    | Error msg -> raise (Json.Parse_error msg)));
            }
      with Json.Parse_error msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Baseline comparison (the CI gate)                                   *)
(* ------------------------------------------------------------------ *)

let protected e = e.prepare <> "as-is"

(* Checked on the current report alone: the invariants hold whatever
   the baseline says. *)
let invariant_errors report =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun e ->
      if e.deadlocked && protected e then
        err "%s: deadlock on a %s-protected design" e.label e.prepare;
      if e.deadlocked && not e.cdg_cyclic then
        err "%s: deadlock despite an acyclic CDG" e.label;
      if e.deadlocked && not e.certified then
        err "%s: deadlock without a waits-for cycle certificate" e.label)
    report.entries;
  (* A burned SLO recorded in the report fails the gate like any other
     invariant: the campaign declared the objective, then missed it. *)
  List.iter
    (fun (v : Noc_obs.Slo.verdict) ->
      if not v.Noc_obs.Slo.ok then
        err "SLO %s burned: %s" v.Noc_obs.Slo.slo v.Noc_obs.Slo.detail)
    report.slo;
  List.rev !errors

let compare_to_baseline ?(latency_tolerance = 0.25)
    ?(throughput_tolerance = 0.25) ~baseline current =
  let errors = ref (invariant_errors current) in
  let err fmt = Printf.ksprintf (fun m -> errors := !errors @ [ m ]) fmt in
  let within tol base now =
    if base = 0. then Float.abs now <= tol
    else Float.abs (now -. base) /. Float.abs base <= tol
  in
  List.iter
    (fun b ->
      match
        List.find_opt (fun c -> c.job_hash = b.job_hash) current.entries
      with
      | None -> err "%s: cell missing from current report" b.label
      | Some c when c.result_hash = b.result_hash -> ()
      | Some c ->
          (* Deadlock flags are the hard part of the contract; the
             performance metrics may drift inside their bands. *)
          if c.deadlocked <> b.deadlocked then
            err "%s: deadlocked changed %b -> %b" b.label b.deadlocked
              c.deadlocked;
          if c.certified <> b.certified then
            err "%s: certificate presence changed %b -> %b" b.label b.certified
              c.certified;
          if c.delivered <> b.delivered then
            err "%s: delivered packets changed %.0f -> %.0f (sim is \
                 deterministic; update the baseline deliberately)"
              b.label b.delivered c.delivered;
          if not (within latency_tolerance b.avg_latency c.avg_latency) then
            err "%s: avg latency %.1f drifted more than %.0f%% from %.1f"
              b.label c.avg_latency
              (100. *. latency_tolerance)
              b.avg_latency;
          if not (within throughput_tolerance b.throughput c.throughput) then
            err "%s: throughput %.3f drifted more than %.0f%% from %.3f"
              b.label c.throughput
              (100. *. throughput_tolerance)
              b.throughput;
          if c.vcs_added <> b.vcs_added then
            err "%s: vcs_added changed %.0f -> %.0f" b.label b.vcs_added
              c.vcs_added)
    baseline.entries;
  !errors

let pp ppf report =
  let deadlocks = List.filter (fun e -> e.deadlocked) report.entries in
  Format.fprintf ppf "@[<v>%d cells, %d deadlocks (%d certified)"
    (List.length report.entries)
    (List.length deadlocks)
    (List.length (List.filter (fun e -> e.certified) deadlocks));
  List.iter
    (fun e ->
      Format.fprintf ppf "@,%-34s %-10s %s" e.label
        (if e.deadlocked then "DEADLOCK" else "ok")
        (if e.deadlocked then
           Printf.sprintf "at cycle %.0f" e.cycles
         else
           Printf.sprintf "avg %.1f p95 %.0f thr %.2f" e.avg_latency
             e.p95_latency e.throughput))
    report.entries;
  Format.fprintf ppf "@]"
