(* A campaign is a grid of Simulate jobs plus the machinery to run it
   at fleet scale: jobs flow through the ordinary batch engine (so the
   lint gate, the result cache, telemetry and obs spans all apply),
   warm results are served from the persistent store and fresh ones
   written back, and the finished cells are checked against the paper's
   behavioural claim — an acyclic CDG never deadlocks; an unprotected
   cyclic one does, with a certificate. *)

open Noc_service

type point = { benchmark : string; n_switches : int }

let default_prepares = [ Job.As_is; Job.Removal_first; Job.Ordering_first ]

let grid ?(max_degree = Job.default_max_degree)
    ?(prepares = default_prepares) ?(rates = []) ~points ~workloads () =
  let workload_variants w =
    match rates with
    | [] -> [ w ]
    | rates -> (
        match List.filter_map (Noc_benchmarks.Workloads.at_rate w) rates with
        | [] -> [ w ] (* kind has no rate parameter: one variant *)
        | variants -> variants)
  in
  List.concat_map
    (fun { benchmark; n_switches } ->
      List.concat_map
        (fun w ->
          List.concat_map
            (fun workload ->
              List.map
                (fun prepare ->
                  {
                    Job.design =
                      Job.Benchmark { name = benchmark; n_switches; max_degree };
                    method_ = Job.simulate ~prepare workload;
                  })
                prepares)
            (workload_variants w))
        workloads)
    points

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type cell = { job : Job.t; outcome : Outcome.t; cached : bool }

type config = { domains : int; store : Store.t option; lint : bool }

let default_config = { domains = 1; store = None; lint = true }

(* SLO surface: per-cell wall time feeds the campaign_cell_p99_ms
   objective.  Warm cells observe their stored wall time — the SLO is
   about what a cell costs, however it was obtained. *)
let cell_ms =
  lazy
    (Noc_obs.Metrics.histogram "noc_campaign_cell_ms"
       ~buckets:[| 1.; 5.; 25.; 100.; 500.; 2_500.; 10_000.; 60_000. |])

let observe_cell cell =
  Noc_obs.Metrics.observe (Lazy.force cell_ms) cell.outcome.Outcome.wall_ms

let run ?(on_cell = fun (_ : cell) -> ()) config jobs =
  if config.domains < 1 then invalid_arg "Campaign.run: domains < 1";
  let on_cell cell =
    observe_cell cell;
    on_cell cell
  in
  (* Serve what the store already knows (the resume path), then batch
     the rest and write fresh deterministic results back. *)
  let warm, cold =
    List.partition_map
      (fun job ->
        match Option.bind config.store (fun s -> Store.find s (Job.hash job)) with
        | Some outcome -> Left { job; outcome; cached = true }
        | None -> Right job)
      jobs
  in
  List.iter on_cell warm;
  let results, _summary =
    Batch.run
      ~on_result:(fun (r : Batch.job_result) ->
        on_cell { job = r.Batch.job; outcome = r.Batch.outcome; cached = false })
      {
        Batch.domains = config.domains;
        cache = Some (Result_cache.create ~capacity:(max 1 (List.length jobs)));
        telemetry = Telemetry.null;
        timeout_ms = None;
        fail_fast = false;
        lint = config.lint;
      }
      cold
  in
  let fresh =
    List.map
      (fun (r : Batch.job_result) ->
        (match config.store with
        | Some s when Outcome.is_done r.Batch.outcome ->
            ignore (Store.store s (Job.hash r.Batch.job) r.Batch.outcome)
        | Some _ | None -> ());
        { job = r.Batch.job; outcome = r.Batch.outcome; cached = false })
      results
  in
  Option.iter Store.flush config.store;
  (* Reassemble in grid order so reports are stable however the cells
     were obtained. *)
  let by_hash = Hashtbl.create (List.length jobs) in
  List.iter
    (fun c -> Hashtbl.replace by_hash (Job.hash c.job) c)
    (warm @ fresh);
  List.filter_map (fun job -> Hashtbl.find_opt by_hash (Job.hash job)) jobs

(* ------------------------------------------------------------------ *)
(* Cell accessors                                                      *)
(* ------------------------------------------------------------------ *)

let metric cell name =
  match Outcome.metric cell.outcome name with Some v -> v | None -> 0.

let flag cell name = metric cell name > 0.5
let deadlocked cell = flag cell "deadlocked"
let certified cell = flag cell "certified"
let cdg_cyclic cell = flag cell "cdg_cyclic"

let prepare_of cell =
  match cell.job.Job.method_ with
  | Job.Simulate { prepare; _ } -> Some prepare
  | Job.Removal _ | Job.Resource_ordering _ | Job.Sweep -> None

let workload_of cell =
  match cell.job.Job.method_ with
  | Job.Simulate { workload; _ } -> Some workload
  | Job.Removal _ | Job.Resource_ordering _ | Job.Sweep -> None

let design_label cell =
  match cell.job.Job.design with
  | Job.Benchmark { name; n_switches; _ } ->
      Printf.sprintf "%s@%d" name n_switches
  | Job.Inline _ -> "inline"

(* ------------------------------------------------------------------ *)
(* Invariant verification                                              *)
(* ------------------------------------------------------------------ *)

type verdict = {
  cells : int;
  warm : int;
  failed : int;
  deadlocks : int;
  cyclic_cells : int;
  cyclic_deadlocks : int;
  violations : string list;
}

let verify ?(expect_cyclic_deadlock = true) cells =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let failed = ref 0 and deadlocks = ref 0 in
  let cyclic = ref 0 and cyclic_deadlocks = ref 0 in
  let warm = List.length (List.filter (fun c -> c.cached) cells) in
  List.iter
    (fun cell ->
      let label = Job.label cell.job in
      if not (Outcome.is_done cell.outcome) then begin
        incr failed;
        violate "%s: did not finish (%s)" label
          (match cell.outcome.Outcome.status with
          | Outcome.Failed msg -> msg
          | Outcome.Timed_out -> "timed out"
          | Outcome.Cancelled -> "cancelled"
          | Outcome.Done -> assert false)
      end
      else begin
        if cdg_cyclic cell then incr cyclic;
        if deadlocked cell then begin
          incr deadlocks;
          if cdg_cyclic cell then incr cyclic_deadlocks;
          (* The paper's claim, cell by cell: only an unprotected
             cyclic CDG may deadlock, and a real deadlock always has a
             waits-for cycle certificate. *)
          (match prepare_of cell with
          | Some Job.Removal_first ->
              violate "%s: deadlock on a removal-protected design" label
          | Some Job.Ordering_first ->
              violate "%s: deadlock on a resource-ordered design" label
          | Some Job.As_is | None -> ());
          if not (cdg_cyclic cell) then
            violate "%s: deadlock despite an acyclic CDG" label;
          if not (certified cell) then
            violate "%s: deadlock without a waits-for cycle certificate" label
        end
      end)
    cells;
  if expect_cyclic_deadlock && !cyclic > 0 && !cyclic_deadlocks = 0 then
    violate
      "no deadlock observed on any of the %d unprotected cyclic-CDG cells \
       (workloads too gentle to witness the hazard?)"
      !cyclic;
  {
    cells = List.length cells;
    warm;
    failed = !failed;
    deadlocks = !deadlocks;
    cyclic_cells = !cyclic;
    cyclic_deadlocks = !cyclic_deadlocks;
    violations = List.rev !violations;
  }

let verdict_ok v = v.violations = []

let pp_verdict ppf v =
  Format.fprintf ppf
    "@[<v>%d cells (%d warm), %d deadlocks (%d on cyclic designs), %d failed"
    v.cells v.warm v.deadlocks v.cyclic_deadlocks v.failed;
  (match v.violations with
  | [] -> Format.fprintf ppf "@,invariants hold"
  | vs ->
      Format.fprintf ppf "@,%d violation%s:" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      List.iter (fun m -> Format.fprintf ppf "@,  %s" m) vs);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Markdown report                                                     *)
(* ------------------------------------------------------------------ *)

let outcome_word cell =
  if not (Outcome.is_done cell.outcome) then
    match cell.outcome.Outcome.status with
    | Outcome.Failed _ -> "failed"
    | Outcome.Timed_out -> "timed out"
    | Outcome.Cancelled -> "cancelled"
    | Outcome.Done -> assert false
  else if deadlocked cell then
    if certified cell then "DEADLOCK (certified)" else "DEADLOCK"
  else if flag cell "timed_out" then "timed out (sim)"
  else "completed"

let markdown_report cells verdict =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# Simulation campaign";
  line "";
  line "- cells: %d (%d served warm from the store)" verdict.cells verdict.warm;
  line "- deadlocks: %d, all expected on unprotected cyclic-CDG designs: %s"
    verdict.deadlocks
    (if verdict_ok verdict then "yes" else "NO");
  line "- cyclic-CDG cells: %d (%d deadlocked)" verdict.cyclic_cells
    verdict.cyclic_deadlocks;
  (match verdict.violations with
  | [] -> line "- invariants: hold"
  | vs ->
      line "- violations:";
      List.iter (fun v -> line "  - %s" v) vs);
  line "";
  line "| design | workload | prepare | CDG | outcome | cycles | delivered | avg lat | p95 lat | thr (flits/cyc) | VCs added |";
  line "|---|---|---|---|---|---:|---:|---:|---:|---:|---:|";
  List.iter
    (fun cell ->
      let workload =
        match workload_of cell with
        | Some w -> Noc_benchmarks.Workloads.describe w
        | None -> "-"
      in
      let prepare =
        match prepare_of cell with
        | Some p -> Job.prepare_name p
        | None -> "-"
      in
      line "| %s | %s | %s | %s | %s | %.0f | %.0f/%.0f | %.1f | %.0f | %.2f | %.0f |"
        (design_label cell) workload prepare
        (if cdg_cyclic cell then "cyclic" else "acyclic")
        (outcome_word cell) (metric cell "cycles") (metric cell "delivered")
        (metric cell "packets") (metric cell "avg_latency")
        (metric cell "p95_latency") (metric cell "throughput")
        (metric cell "vcs_added"))
    cells;
  (* Load–latency curves: rate-parameterized cells grouped per design
     and preparation, in rate order. *)
  let rated =
    List.filter_map
      (fun cell ->
        match workload_of cell with
        | Some w -> (
            match Noc_benchmarks.Workloads.injection_rate w with
            | Some rate when Outcome.is_done cell.outcome ->
                Some (cell, Noc_benchmarks.Workloads.kind w, rate)
            | Some _ | None -> None)
        | None -> None)
      cells
  in
  if rated <> [] then begin
    line "";
    line "## Load–latency";
    line "";
    line "| design | workload | prepare | rate | outcome | avg lat | p95 lat | thr (flits/cyc) |";
    line "|---|---|---|---:|---|---:|---:|---:|";
    let sorted =
      List.sort
        (fun (a, ka, ra) (b, kb, rb) ->
          match compare (design_label a) (design_label b) with
          | 0 -> (
              match compare ka kb with
              | 0 -> (
                  match compare (prepare_of a) (prepare_of b) with
                  | 0 -> compare ra rb
                  | c -> c)
              | c -> c)
          | c -> c)
        rated
    in
    List.iter
      (fun (cell, kind, rate) ->
        let prepare =
          match prepare_of cell with
          | Some p -> Job.prepare_name p
          | None -> "-"
        in
        line "| %s | %s | %s | %.3f | %s | %.1f | %.0f | %.2f |"
          (design_label cell) kind prepare rate (outcome_word cell)
          (metric cell "avg_latency") (metric cell "p95_latency")
          (metric cell "throughput"))
      sorted
  end;
  Buffer.contents b
