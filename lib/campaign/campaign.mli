(** Simulation campaigns: sweep (benchmark x switch count x workload x
    injection rate x preparation) through the wormhole simulator and
    check the paper's behavioural claim on every cell.

    A campaign is just a grid of {!Noc_service.Job.Simulate} jobs, so
    it inherits the whole service stack: the lint admission gate, the
    multicore batch engine, content-addressed caching, and — when a
    {!Noc_service.Store.t} is supplied — persistent warm results that
    make an interrupted campaign resumable.

    The invariants {!verify} checks, cell by cell:
    - a design prepared by removal or resource ordering never reports
      [Deadlocked];
    - a cell with an acyclic CDG never reports [Deadlocked];
    - every reported deadlock carries a waits-for cycle certificate;
    - (optionally) at least one unprotected cyclic-CDG cell actually
      deadlocks, so the hazard was witnessed, not merely asserted. *)

open Noc_service

type point = { benchmark : string; n_switches : int }

val default_prepares : Job.prepare list
(** As-is, removal, resource ordering — the paper's comparison. *)

val grid :
  ?max_degree:int ->
  ?prepares:Job.prepare list ->
  ?rates:float list ->
  points:point list ->
  workloads:Noc_benchmarks.Workloads.spec list ->
  unit ->
  Job.t list
(** The full factorial grid, in deterministic order.  Each
    rate-parameterized workload ([uniform], [hotspot]) appears once per
    entry of [rates] (via {!Noc_benchmarks.Workloads.at_rate}); other
    kinds appear once regardless of [rates]. *)

type cell = {
  job : Job.t;
  outcome : Outcome.t;
  cached : bool;  (** Served warm from the store (the resume path). *)
}

type config = {
  domains : int;  (** Worker domains for the batch engine. *)
  store : Store.t option;
      (** Persistent result store: hits skip simulation entirely,
          fresh deterministic results are written back. *)
  lint : bool;  (** Vet every job before it reaches a worker. *)
}

val default_config : config
(** 1 domain, no store, lint on. *)

val run : ?on_cell:(cell -> unit) -> config -> Job.t list -> cell list
(** Run the grid: store hits first (flagged [cached]), the rest through
    {!Batch.run}.  [on_cell] streams cells as they resolve; the
    returned list is in grid order regardless.
    @raise Invalid_argument when [config.domains < 1]. *)

(** {1 Cell accessors} *)

val metric : cell -> string -> float
(** A named outcome metric, [0.] when absent. *)

val deadlocked : cell -> bool
val certified : cell -> bool
val cdg_cyclic : cell -> bool
val prepare_of : cell -> Job.prepare option
val workload_of : cell -> Noc_benchmarks.Workloads.spec option

val design_label : cell -> string
(** ["D36_8@14"], or ["inline"]. *)

(** {1 Verification} *)

type verdict = {
  cells : int;
  warm : int;
  failed : int;  (** Cells whose job did not finish. *)
  deadlocks : int;
  cyclic_cells : int;  (** Finished cells simulated on a cyclic CDG. *)
  cyclic_deadlocks : int;
  violations : string list;  (** Empty iff the invariants hold. *)
}

val verify : ?expect_cyclic_deadlock:bool -> cell list -> verdict
(** Check every cell against the deadlock-freedom invariants.  With
    [expect_cyclic_deadlock] (default [true]), a campaign that has
    unprotected cyclic cells but observed no deadlock on any of them is
    a violation too — the hazard must be witnessed. *)

val verdict_ok : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val markdown_report : cell list -> verdict -> string
(** The campaign as a Markdown document: summary bullets, the per-cell
    table, and load–latency curves for rate-parameterized workloads. *)
