(** Metrics exposition: Prometheus text format v0.0.4 and a JSON
    snapshot of the registry.

    {!text} renders a {!Metrics.snapshot} as the Prometheus text
    format — one [# TYPE] line per metric family, cumulative
    [_bucket] / [_sum] / [_count] series for histograms, label values
    escaped per the format (backslash, quote, newline).  {!json}
    wraps the same snapshot as a [noc-metrics/1] JSON document for the
    typed wire path.

    {!check_text} is a strict parser for the emitted subset, shared by
    the qcheck exposition property and the metrics-smoke jobs: a scrape
    that fails it is a format bug, not a transport hiccup. *)

val schema : string
(** ["noc-metrics/1"]. *)

val text : Metrics.metric list -> string
(** Prometheus text exposition (v0.0.4) of the metrics, grouped by
    family in name order. *)

val json : Metrics.metric list -> Noc_json.Json.t
(** [{"schema":"noc-metrics/1","metrics":[...]}] using
    {!Metrics.to_json} per metric. *)

val metrics_of_json :
  Noc_json.Json.t -> (Metrics.metric list, string) result
(** Decode a {!json} document back into typed metric values (plain
    data, not registered instruments) — the client side of the wire
    [Metrics] reply, so [noc_tool top] can reuse {!Metrics.quantile}
    against a remote snapshot. *)

val check_text : string -> (unit, string) result
(** Validate an exposition document: every sample line parses (name,
    escaped labels, float value), references a declared [# TYPE]
    (declared once), and histogram series are cumulative with a
    [+Inf] bucket equal to their [_count]. *)
