(** Declared service-level objectives evaluated against a metrics
    snapshot.

    An SLO pairs a name with an objective over registry metrics —
    a p99 latency ceiling (histogram-bucket interpolation via
    {!Metrics.quantile}), a gauge floor, a counter ceiling, or a
    counter ratio floor.  {!evaluate} turns a snapshot into verdicts;
    an objective whose metric has no data yet is {e vacuously green}
    (the daemon just started, the store is disabled, the prover never
    ran), so default thresholds stay green on a healthy service and
    only real burn — or an {!override}-injected threshold — fails the
    gate.

    Verdicts surface three ways: {!to_metrics} renders them as
    [noc_slo_ok{slo="..."}] gauges appended to the scrape,
    {!to_json}/{!verdicts_of_json} carry them through the [slo]
    section of bench reports, and {!pp_verdict} prints the
    [noc_tool top] / campaign table rows. *)

type objective =
  | P99_below of { metric : string; threshold_ms : float }
  | Gauge_at_least of { metric : string; floor : float }
  | Counter_at_most of { metric : string; max_value : float }
  | Ratio_at_least of { num : string; den : string; floor : float }

type t = { slo_name : string; objective : objective }

type verdict = {
  slo : string;
  ok : bool;
  value : float option;
  detail : string;
}

val defaults : t list
(** The declared objectives: [submit_p99_ms], [queue_wait_p99_ms],
    [store_hit_rate], [dlf_agreement], [campaign_cell_p99_ms]. *)

val evaluate : t list -> Metrics.metric list -> verdict list
(** One verdict per objective.  Labeled instruments of a family merge
    (histograms bucket-wise, counters by sum, gauges by min) before
    evaluation. *)

val burned : verdict list -> verdict list
(** The failing verdicts. *)

val override : t list -> string -> (t list, string) result
(** [override slos "NAME=VALUE"] replaces the named objective's
    threshold/floor/ceiling — how tests and CI inject a violation. *)

val to_metrics : verdict list -> Metrics.metric list
(** [noc_slo_ok{slo="..."}] gauges (1 green, 0 burned). *)

val to_json : verdict list -> Noc_json.Json.t
val verdicts_of_json : Noc_json.Json.t -> (verdict list, string) result
val pp_verdict : Format.formatter -> verdict -> unit
