module Json = Noc_json.Json

type value = Bool of bool | Int of int | Float of float | Str of string

type entry =
  | Begin of { name : string; ts_ns : int64 }
  | End of { name : string; ts_ns : int64; attrs : (string * value) list }

(* One buffer per (collector, domain): appended to only by its owning
   domain, so recording is lock-free; the collector's mutex guards only
   the registration list, touched once per domain. *)
type buffer = { domain : int; mutable entries : entry list (* newest first *) }

type collector = {
  epoch_ns : int64;
  mutable buffers : buffer list;
  mutex : Mutex.t;
}

let create () =
  { epoch_ns = Clock.now_ns (); buffers = []; mutex = Mutex.create () }

(* The current collector.  One atomic load decides the disabled fast
   path at every instrumented site. *)
let current : collector option Atomic.t = Atomic.make None

let install c = Atomic.set current (Some c)
let uninstall () = Atomic.set current None
let enabled () = Atomic.get current <> None

(* Domain-local slot caching this domain's buffer for the collector it
   was created under; a collector swap just allocates a fresh buffer. *)
let dls_buffer : (collector * buffer) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let buffer_for c =
  let slot = Domain.DLS.get dls_buffer in
  match !slot with
  | Some (c', buf) when c' == c -> buf
  | _ ->
      let buf = { domain = (Domain.self () :> int); entries = [] } in
      Mutex.lock c.mutex;
      c.buffers <- buf :: c.buffers;
      Mutex.unlock c.mutex;
      slot := Some (c, buf);
      buf

type span =
  | Null
  | Active of {
      buf : buffer;
      name : string;
      mutable attrs : (string * value) list;  (** newest first *)
      mutable closed : bool;
    }

let null_span = Null

let start ?(attrs = []) name =
  match Atomic.get current with
  | None -> Null
  | Some c ->
      let buf = buffer_for c in
      buf.entries <- Begin { name; ts_ns = Clock.now_ns () } :: buf.entries;
      Active { buf; name; attrs = List.rev attrs; closed = false }

let add_attr span key v =
  match span with
  | Null -> ()
  | Active s -> if not s.closed then s.attrs <- (key, v) :: s.attrs

let finish ?(attrs = []) span =
  match span with
  | Null -> ()
  | Active s ->
      if not s.closed then begin
        s.closed <- true;
        let attrs = List.rev s.attrs @ attrs in
        s.buf.entries <-
          End { name = s.name; ts_ns = Clock.now_ns (); attrs }
          :: s.buf.entries
      end

let with_span ?attrs name f =
  match Atomic.get current with
  | None -> f Null
  | Some _ ->
      let span = start ?attrs name in
      Fun.protect ~finally:(fun () -> finish span) (fun () -> f span)

let epoch_ns c = c.epoch_ns

let events c =
  Mutex.lock c.mutex;
  let buffers = c.buffers in
  Mutex.unlock c.mutex;
  buffers
  |> List.map (fun b -> (b.domain, List.rev b.entries))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type completed = {
  name : string;
  domain : int;
  depth : int;
  start_ns : int64;
  stop_ns : int64;
  attrs : (string * value) list;
}

let completed_spans c =
  let of_buffer (domain, entries) =
    (* Stack-match begins and ends; the API guarantees LIFO closing per
       domain, so an End always matches the innermost open Begin. *)
    let completed = ref [] in
    let stack = ref [] in
    List.iter
      (fun entry ->
        match entry with
        | Begin { name; ts_ns } -> stack := (name, ts_ns) :: !stack
        | End { name = _; ts_ns; attrs } -> (
            match !stack with
            | [] -> () (* unmatched end: drop *)
            | (name, start_ns) :: rest ->
                stack := rest;
                completed :=
                  {
                    name;
                    domain;
                    depth = List.length rest;
                    start_ns;
                    stop_ns = ts_ns;
                    attrs;
                  }
                  :: !completed))
      entries;
    !completed
  in
  events c
  |> List.concat_map of_buffer
  |> List.sort (fun a b -> compare (a.domain, a.start_ns) (b.domain, b.start_ns))

let value_to_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s

let attrs_to_json attrs =
  Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)
