(** Process-wide metrics registry: counters, gauges, and fixed-bucket
    histograms.

    Handles are obtained by name ([get-or-create]); recording on a
    handle is lock-free (atomics), so worker domains update metrics
    without coordination.  Unlike spans, metrics are always on — a
    counter bump is one atomic increment, far below timing noise — and
    nothing here participates in result hashing.

    {b Naming convention} (validated at registration): every base name
    matches [noc_<subsystem>_<name>] — lowercase [a-z0-9_] only, at
    least two segments after the [noc_] prefix — and counters end in
    [_total] while gauges and histograms must not.  Instruments may
    additionally carry {e labels} (sorted key/value pairs); the
    registry key is the full identity [name{k="v",...}], so
    [noc_serve_request_ms{method="submit"}] and
    [...{method="ping"}] are distinct instruments.

    {!snapshot} returns a point-in-time copy for export;
    {!reset} zeroes every registered instrument in place (handles stay
    valid), which is what tests and fresh trace runs want. *)

type counter
type gauge
type histogram

val counter : ?labels:(string * string) list -> string -> counter
(** Get or create the counter named [name] (with optional labels).
    @raise Invalid_argument if the identity is registered as another
    kind, or the name/labels violate the convention above. *)

val incr : counter -> unit
val add : counter -> int -> unit

val gauge : ?labels:(string * string) list -> string -> gauge
(** @raise Invalid_argument as for {!counter}. *)

val set_gauge : gauge -> float -> unit

val default_buckets : float array
(** Millisecond-scale upper bounds: [0.01 .. 5000] in a 1-5-10
    progression. *)

val histogram :
  ?buckets:float array -> ?labels:(string * string) list -> string -> histogram
(** Get or create; [buckets] (strictly increasing upper bounds,
    default {!default_buckets}) is fixed by the first creation.
    @raise Invalid_argument if the identity is registered as another
    kind, the name/labels are malformed, or [buckets] is empty or not
    strictly increasing. *)

val observe : histogram -> float -> unit
(** Record a sample into its bucket (first bound [>=] sample; samples
    above every bound land in the implicit overflow bucket). *)

type metric =
  | Counter of { name : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; labels : (string * string) list; value : float }
  | Histogram of {
      name : string;
      labels : (string * string) list;
      buckets : (float * int) list;  (** (upper bound, count) pairs. *)
      overflow : int;
      count : int;
      sum : float;
    }

val metric_base : metric -> string
(** The base name, without labels. *)

val metric_labels : metric -> (string * string) list

val metric_name : metric -> string
(** The full identity: base name plus rendered labels
    ([name{k="v"}]); equals {!metric_base} when unlabeled. *)

val escape_label_value : string -> string
(** Prometheus label-value escaping: backslash, double quote, and
    newline get a backslash escape. *)

val snapshot : unit -> metric list
(** Every registered metric, sorted by identity. *)

val reset : unit -> unit
(** Zero all registered instruments in place. *)

val quantile : q:float -> metric -> float option
(** Prometheus-style quantile estimate over a histogram's buckets:
    linear interpolation inside the bucket holding the [q]-th sample;
    overflow samples clamp to the highest finite bound.  [None] for
    counters, gauges, and empty histograms. *)

val to_json : metric -> Noc_json.Json.t
(** One flat object per metric ([kind], [name], value fields, plus
    [labels] when present) — the shape of [noc-trace/1] metric
    lines. *)

val pp : Format.formatter -> metric list -> unit
