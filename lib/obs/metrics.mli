(** Process-wide metrics registry: counters, gauges, and fixed-bucket
    histograms.

    Handles are obtained by name ([get-or-create]); recording on a
    handle is lock-free (atomics), so worker domains update metrics
    without coordination.  Unlike spans, metrics are always on — a
    counter bump is one atomic increment, far below timing noise — and
    nothing here participates in result hashing.

    {!snapshot} returns a point-in-time copy for export;
    {!reset} zeroes every registered instrument in place (handles stay
    valid), which is what tests and fresh trace runs want. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create the counter named [name].
    @raise Invalid_argument if [name] is registered as another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit

val gauge : string -> gauge
(** @raise Invalid_argument if [name] is registered as another kind. *)

val set_gauge : gauge -> float -> unit

val default_buckets : float array
(** Millisecond-scale upper bounds: [0.01 .. 5000] in a 1-5-10
    progression. *)

val histogram : ?buckets:float array -> string -> histogram
(** Get or create; [buckets] (strictly increasing upper bounds,
    default {!default_buckets}) is fixed by the first creation.
    @raise Invalid_argument if [name] is registered as another kind or
    [buckets] is empty or not strictly increasing. *)

val observe : histogram -> float -> unit
(** Record a sample into its bucket (first bound [>=] sample; samples
    above every bound land in the implicit overflow bucket). *)

type metric =
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of {
      name : string;
      buckets : (float * int) list;  (** (upper bound, count) pairs. *)
      overflow : int;
      count : int;
      sum : float;
    }

val metric_name : metric -> string

val snapshot : unit -> metric list
(** Every registered metric, sorted by name. *)

val reset : unit -> unit
(** Zero all registered instruments in place. *)

val to_json : metric -> Noc_json.Json.t
(** One flat object per metric ([kind], [name], value fields) — the
    shape of [noc-trace/1] metric lines. *)

val pp : Format.formatter -> metric list -> unit
