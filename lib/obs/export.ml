module Json = Noc_json.Json

let schema = "noc-trace/1"

let entry_ts = function
  | Trace.Begin { ts_ns; _ } | Trace.End { ts_ns; _ } -> ts_ns

(* All domains' events in one stream, ordered by timestamp.  The sort
   is stable over the per-domain concatenation, so each domain's
   (already monotone) order is preserved under ties. *)
let merged_events c =
  Trace.events c
  |> List.concat_map (fun (domain, entries) ->
         List.map (fun e -> (domain, e)) entries)
  |> List.stable_sort (fun (_, a) (_, b) -> Int64.compare (entry_ts a) (entry_ts b))

(* Chrome trace-event JSON ------------------------------------------ *)

let chrome ?(metrics = []) c =
  let epoch = Trace.epoch_ns c in
  let ts_us ts = Int64.to_float (Int64.sub ts epoch) /. 1e3 in
  let common ~domain ~ts =
    [
      ("ts", Json.Num (ts_us ts));
      ("pid", Json.Num 0.);
      ("tid", Json.Num (float_of_int domain));
    ]
  in
  let event (domain, entry) =
    match entry with
    | Trace.Begin { name; ts_ns } ->
        Json.Obj
          (("name", Json.Str name)
          :: ("ph", Json.Str "B")
          :: common ~domain ~ts:ts_ns)
    | Trace.End { name; ts_ns; attrs } ->
        Json.Obj
          (("name", Json.Str name)
          :: ("ph", Json.Str "E")
          :: common ~domain ~ts:ts_ns
          @
          match attrs with
          | [] -> []
          | attrs -> [ ("args", Trace.attrs_to_json attrs) ])
  in
  let other =
    ("source", Json.Str "noc_tool")
    :: List.map
         (fun m -> (Metrics.metric_name m, Json.Str (Json.to_string (Metrics.to_json m))))
         metrics
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event (merged_events c)));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj other);
    ]

(* noc-trace/1 JSONL ------------------------------------------------- *)

let jsonl ?(metrics = []) c =
  let epoch = Trace.epoch_ns c in
  let rel ts = Int64.to_float (Int64.sub ts epoch) in
  let header =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("clock", Json.Str "monotonic");
        ("epoch_ns", Json.Num (Int64.to_float epoch));
      ]
  in
  let events = merged_events c in
  let last_ts =
    List.fold_left (fun acc (_, e) -> max acc (rel (entry_ts e))) 0. events
  in
  let line (domain, entry) =
    match entry with
    | Trace.Begin { name; ts_ns } ->
        Json.Obj
          [
            ("ts", Json.Num (rel ts_ns));
            ("event", Json.Str "span_begin");
            ("name", Json.Str name);
            ("domain", Json.Num (float_of_int domain));
          ]
    | Trace.End { name; ts_ns; attrs } ->
        Json.Obj
          ([
             ("ts", Json.Num (rel ts_ns));
             ("event", Json.Str "span_end");
             ("name", Json.Str name);
             ("domain", Json.Num (float_of_int domain));
           ]
          @
          match attrs with
          | [] -> []
          | attrs -> [ ("attrs", Trace.attrs_to_json attrs) ])
  in
  let metric_line m =
    match Metrics.to_json m with
    | Json.Obj fields ->
        Json.Obj
          (("ts", Json.Num last_ts) :: ("event", Json.Str "metric") :: fields)
    | other -> other
  in
  (header :: List.map line events) @ List.map metric_line metrics

let to_sink (sink : Sink.t) lines =
  List.iter sink.Sink.emit lines;
  sink.Sink.close ()

(* Summary ----------------------------------------------------------- *)

let phase_totals_ms c =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.completed) ->
      let ms = Clock.ms_between ~start_ns:s.start_ns ~stop_ns:s.stop_ns in
      let prev = Option.value ~default:0. (Hashtbl.find_opt tbl s.name) in
      Hashtbl.replace tbl s.name (prev +. ms))
    (Trace.completed_spans c);
  Hashtbl.fold (fun name ms acc -> (name, ms) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_summary ?(metrics = []) ppf c =
  let spans = Trace.completed_spans c in
  match spans with
  | [] -> Format.fprintf ppf "trace: no completed spans@."
  | _ ->
      let wall_ms =
        let start =
          List.fold_left
            (fun acc (s : Trace.completed) -> min acc s.start_ns)
            Int64.max_int spans
        in
        let stop =
          List.fold_left
            (fun acc (s : Trace.completed) -> max acc s.stop_ns)
            Int64.min_int spans
        in
        Clock.ms_between ~start_ns:start ~stop_ns:stop
      in
      let counts = Hashtbl.create 16 in
      List.iter
        (fun (s : Trace.completed) ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt counts s.name) in
          Hashtbl.replace counts s.name (prev + 1))
        spans;
      Format.fprintf ppf "@[<v>%-28s %8s %12s %7s@," "span" "count" "total ms"
        "share";
      List.iter
        (fun (name, total) ->
          Format.fprintf ppf "%-28s %8d %12.3f %6.1f%%@," name
            (Hashtbl.find counts name) total
            (if wall_ms > 0. then 100. *. total /. wall_ms else 0.))
        (phase_totals_ms c);
      Format.fprintf ppf "traced wall interval: %.3f ms over %d span%s@]" wall_ms
        (List.length spans)
        (if List.length spans = 1 then "" else "s");
      if metrics <> [] then
        Format.fprintf ppf "@.@[<v>metrics:@,%a@]" Metrics.pp metrics
