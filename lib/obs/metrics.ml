module Json = Noc_json.Json

(* Name hygiene ------------------------------------------------------ *)

(* One convention for every instrument in the process:
   [noc_<subsystem>_<name>]; counters additionally end in [_total].
   Enforced at registration so a malformed name fails fast at module
   load rather than surfacing misspelled in a dashboard. *)

let name_convention = "noc_<subsystem>_<name>[_total]"

let valid_name_chars name =
  String.length name > 0
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let segments name = String.split_on_char '_' name

let base_name_ok name =
  valid_name_chars name
  &&
  match segments name with
  | "noc" :: rest when List.length rest >= 2 ->
      List.for_all (fun s -> String.length s > 0) rest
  | _ -> false

let has_total_suffix name =
  let suffix = "_total" in
  let n = String.length name and k = String.length suffix in
  n >= k && String.sub name (n - k) k = suffix

let validate_name ~kind name =
  let fail reason =
    invalid_arg
      (Printf.sprintf "Metrics: invalid %s name %S (%s; expected %s)" kind name
         reason name_convention)
  in
  if not (base_name_ok name) then fail "malformed";
  match kind with
  | "counter" -> if not (has_total_suffix name) then fail "missing _total"
  | _ -> if has_total_suffix name then fail "_total is reserved for counters"

let label_key_ok key =
  String.length key > 0
  && (match key.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && valid_name_chars key

let validate_labels labels =
  List.iter
    (fun (k, _) ->
      if not (label_key_ok k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label key %S" k))
    labels;
  let keys = List.map fst labels in
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    invalid_arg "Metrics: duplicate label keys"

(* Prometheus label-value escaping: backslash, double quote, newline. *)
let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b {|\\|}
      | '"' -> Buffer.add_string b {|\"|}
      | '\n' -> Buffer.add_string b {|\n|}
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      let pair (k, v) = Printf.sprintf "%s=%S" k (escape_label_value v) in
      "{" ^ String.concat "," (List.map pair labels) ^ "}"

(* Instruments ------------------------------------------------------- *)

type meta = {
  base : string;
  labels : (string * string) list;  (* sorted by key *)
  identity : string;  (* base ^ rendered labels: the registry key *)
}

let make_meta ~kind ?(labels = []) base =
  validate_name ~kind base;
  validate_labels labels;
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  { base; labels; identity = base ^ render_labels labels }

type counter = { c_meta : meta; cell : int Atomic.t }
type gauge = { g_meta : meta; level : float Atomic.t }

type histogram = {
  h_meta : meta;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int Atomic.t array;  (* length = Array.length bounds + 1 (overflow) *)
  sum : float Atomic.t;
  total : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

(* The process-wide registry.  The mutex guards only registration;
   recording goes straight to the instrument's atomics. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register identity make match_existing =
  Mutex.lock registry_mutex;
  let result =
    match Hashtbl.find_opt registry identity with
    | Some existing -> (
        match match_existing existing with
        | Some v -> Ok v
        | None ->
            Error
              (Printf.sprintf "Metrics: %S is already a %s" identity
                 (kind_name existing)))
    | None ->
        let i, v = make () in
        Hashtbl.replace registry identity i;
        Ok v
  in
  Mutex.unlock registry_mutex;
  match result with Ok v -> v | Error msg -> invalid_arg msg

let counter ?labels name =
  let meta = make_meta ~kind:"counter" ?labels name in
  register meta.identity
    (fun () ->
      let c = { c_meta = meta; cell = Atomic.make 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let incr c = Atomic.incr c.cell

let add c n = ignore (Atomic.fetch_and_add c.cell n)

let gauge ?labels name =
  let meta = make_meta ~kind:"gauge" ?labels name in
  register meta.identity
    (fun () ->
      let g = { g_meta = meta; level = Atomic.make 0. } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.level v

let default_buckets =
  [| 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. |]

let histogram ?(buckets = default_buckets) ?labels name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket list";
  for i = 1 to n - 1 do
    if buckets.(i - 1) >= buckets.(i) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  let meta = make_meta ~kind:"histogram" ?labels name in
  register meta.identity
    (fun () ->
      let h =
        {
          h_meta = meta;
          bounds = Array.copy buckets;
          counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
          total = Atomic.make 0;
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

(* Lock-free float accumulation: retry the CAS until no other domain
   raced the cell. *)
let rec atomic_add_float cell v =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. v)) then
    atomic_add_float cell v

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  Atomic.incr h.counts.(bucket 0);
  Atomic.incr h.total;
  atomic_add_float h.sum v

type metric =
  | Counter of { name : string; labels : (string * string) list; value : int }
  | Gauge of { name : string; labels : (string * string) list; value : float }
  | Histogram of {
      name : string;
      labels : (string * string) list;
      buckets : (float * int) list;
      overflow : int;
      count : int;
      sum : float;
    }

let metric_base = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } -> name

let metric_labels = function
  | Counter { labels; _ } | Gauge { labels; _ } | Histogram { labels; _ } ->
      labels

let metric_name m = metric_base m ^ render_labels (metric_labels m)

let snapshot () =
  Mutex.lock registry_mutex;
  let instruments = Hashtbl.fold (fun _ i acc -> i :: acc) registry [] in
  Mutex.unlock registry_mutex;
  instruments
  |> List.map (function
       | C c ->
           Counter
             {
               name = c.c_meta.base;
               labels = c.c_meta.labels;
               value = Atomic.get c.cell;
             }
       | G g ->
           Gauge
             {
               name = g.g_meta.base;
               labels = g.g_meta.labels;
               value = Atomic.get g.level;
             }
       | H h ->
           let n = Array.length h.bounds in
           Histogram
             {
               name = h.h_meta.base;
               labels = h.h_meta.labels;
               buckets =
                 List.init n (fun i ->
                     (h.bounds.(i), Atomic.get h.counts.(i)));
               overflow = Atomic.get h.counts.(n);
               count = Atomic.get h.total;
               sum = Atomic.get h.sum;
             })
  |> List.sort (fun a b -> compare (metric_name a) (metric_name b))

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c.cell 0
      | G g -> Atomic.set g.level 0.
      | H h ->
          Array.iter (fun cell -> Atomic.set cell 0) h.counts;
          Atomic.set h.sum 0.;
          Atomic.set h.total 0)
    registry;
  Mutex.unlock registry_mutex

(* Quantile estimate in the Prometheus style: find the bucket holding
   the q-th sample and interpolate linearly inside it.  Samples in the
   overflow bucket clamp to the highest finite bound. *)
let quantile ~q = function
  | Counter _ | Gauge _ -> None
  | Histogram { buckets; overflow = _; count; _ } when count = 0 || buckets = []
    ->
      None
  | Histogram { buckets; overflow = _; count; _ } ->
      let q = Float.min 1. (Float.max 0. q) in
      let rank = q *. float_of_int count in
      let rec scan lower cumulative = function
        | [] -> Some (fst (List.hd (List.rev buckets)))
        | (le, n) :: rest ->
            let cumulative' = cumulative + n in
            if float_of_int cumulative' >= rank && n > 0 then
              let frac =
                (rank -. float_of_int cumulative) /. float_of_int n
              in
              Some (lower +. (Float.max 0. frac *. (le -. lower)))
            else scan le cumulative' rest
      in
      scan 0. 0 buckets

let labels_to_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let with_labels labels fields =
  match labels with
  | [] -> fields
  | _ -> fields @ [ ("labels", labels_to_json labels) ]

let to_json = function
  | Counter { name; labels; value } ->
      Json.Obj
        (with_labels labels
           [
             ("kind", Json.Str "counter");
             ("name", Json.Str name);
             ("value", Json.Num (float_of_int value));
           ])
  | Gauge { name; labels; value } ->
      Json.Obj
        (with_labels labels
           [
             ("kind", Json.Str "gauge");
             ("name", Json.Str name);
             ("value", Json.Num value);
           ])
  | Histogram { name; labels; buckets; overflow; count; sum } ->
      Json.Obj
        (with_labels labels
           [
             ("kind", Json.Str "histogram");
             ("name", Json.Str name);
             ( "buckets",
               Json.Arr
                 (List.map
                    (fun (le, n) ->
                      Json.Obj
                        [
                          ("le", Json.Num le);
                          ("count", Json.Num (float_of_int n));
                        ])
                    buckets) );
             ("overflow", Json.Num (float_of_int overflow));
             ("count", Json.Num (float_of_int count));
             ("sum", Json.Num sum);
           ])

let pp ppf metrics =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i m ->
      if i > 0 then Format.fprintf ppf "@,";
      match m with
      | Counter { value; _ } ->
          Format.fprintf ppf "%-32s %d" (metric_name m) value
      | Gauge { value; _ } -> Format.fprintf ppf "%-32s %g" (metric_name m) value
      | Histogram { count; sum; _ } ->
          Format.fprintf ppf "%-32s %d sample%s, sum %.3f" (metric_name m) count
            (if count = 1 then "" else "s")
            sum)
    metrics;
  Format.fprintf ppf "@]"
