module Json = Noc_json.Json

type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; level : float Atomic.t }

type histogram = {
  h_name : string;
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int Atomic.t array;  (* length = Array.length bounds + 1 (overflow) *)
  sum : float Atomic.t;
  total : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

(* The process-wide registry.  The mutex guards only registration;
   recording goes straight to the instrument's atomics. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 32
let registry_mutex = Mutex.create ()

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make match_existing =
  Mutex.lock registry_mutex;
  let result =
    match Hashtbl.find_opt registry name with
    | Some existing -> (
        match match_existing existing with
        | Some v -> Ok v
        | None ->
            Error
              (Printf.sprintf "Metrics: %S is already a %s" name
                 (kind_name existing)))
    | None ->
        let i, v = make () in
        Hashtbl.replace registry name i;
        Ok v
  in
  Mutex.unlock registry_mutex;
  match result with Ok v -> v | Error msg -> invalid_arg msg

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let incr c = Atomic.incr c.cell

let add c n = ignore (Atomic.fetch_and_add c.cell n)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; level = Atomic.make 0. } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.level v

let default_buckets =
  [| 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. |]

let histogram ?(buckets = default_buckets) name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket list";
  for i = 1 to n - 1 do
    if buckets.(i - 1) >= buckets.(i) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          bounds = Array.copy buckets;
          counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
          total = Atomic.make 0;
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

(* Lock-free float accumulation: retry the CAS until no other domain
   raced the cell. *)
let rec atomic_add_float cell v =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. v)) then
    atomic_add_float cell v

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  Atomic.incr h.counts.(bucket 0);
  Atomic.incr h.total;
  atomic_add_float h.sum v

type metric =
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of {
      name : string;
      buckets : (float * int) list;
      overflow : int;
      count : int;
      sum : float;
    }

let metric_name = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } -> name

let snapshot () =
  Mutex.lock registry_mutex;
  let instruments = Hashtbl.fold (fun _ i acc -> i :: acc) registry [] in
  Mutex.unlock registry_mutex;
  instruments
  |> List.map (function
       | C c -> Counter { name = c.c_name; value = Atomic.get c.cell }
       | G g -> Gauge { name = g.g_name; value = Atomic.get g.level }
       | H h ->
           let n = Array.length h.bounds in
           Histogram
             {
               name = h.h_name;
               buckets =
                 List.init n (fun i ->
                     (h.bounds.(i), Atomic.get h.counts.(i)));
               overflow = Atomic.get h.counts.(n);
               count = Atomic.get h.total;
               sum = Atomic.get h.sum;
             })
  |> List.sort (fun a b -> compare (metric_name a) (metric_name b))

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> Atomic.set c.cell 0
      | G g -> Atomic.set g.level 0.
      | H h ->
          Array.iter (fun cell -> Atomic.set cell 0) h.counts;
          Atomic.set h.sum 0.;
          Atomic.set h.total 0)
    registry;
  Mutex.unlock registry_mutex

let to_json = function
  | Counter { name; value } ->
      Json.Obj
        [
          ("kind", Json.Str "counter");
          ("name", Json.Str name);
          ("value", Json.Num (float_of_int value));
        ]
  | Gauge { name; value } ->
      Json.Obj
        [
          ("kind", Json.Str "gauge");
          ("name", Json.Str name);
          ("value", Json.Num value);
        ]
  | Histogram { name; buckets; overflow; count; sum } ->
      Json.Obj
        [
          ("kind", Json.Str "histogram");
          ("name", Json.Str name);
          ( "buckets",
            Json.Arr
              (List.map
                 (fun (le, n) ->
                   Json.Obj
                     [
                       ("le", Json.Num le); ("count", Json.Num (float_of_int n));
                     ])
                 buckets) );
          ("overflow", Json.Num (float_of_int overflow));
          ("count", Json.Num (float_of_int count));
          ("sum", Json.Num sum);
        ]

let pp ppf metrics =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i m ->
      if i > 0 then Format.fprintf ppf "@,";
      match m with
      | Counter { name; value } ->
          Format.fprintf ppf "%-32s %d" name value
      | Gauge { name; value } -> Format.fprintf ppf "%-32s %g" name value
      | Histogram { name; count; sum; _ } ->
          Format.fprintf ppf "%-32s %d sample%s, sum %.3f" name count
            (if count = 1 then "" else "s")
            sum)
    metrics;
  Format.fprintf ppf "@]"
