(** Hierarchical span tracing with per-domain buffers.

    A {!collector} accumulates raw begin/end span events.  Each domain
    appends to its own buffer (registered with the collector on first
    use), so recording takes no lock on the hot path and the buffers
    are merged only at export time — the same serialization discipline
    as the telemetry sinks.

    Tracing is off by default: no collector is installed, {!with_span}
    costs one atomic load plus a closure call, and nothing is recorded
    — results and result hashes are untouched.  Installing a collector
    ({!install}) turns every instrumented site on, process-wide.

    Within one domain, spans must close in LIFO order ({!with_span}
    guarantees this, including on exceptions); that makes every
    domain's event stream well-parenthesized, which the exporters and
    the [NOC-TRC-*] lint pass rely on. *)

type value = Bool of bool | Int of int | Float of float | Str of string
(** Span attribute values. *)

type entry =
  | Begin of { name : string; ts_ns : int64 }
  | End of { name : string; ts_ns : int64; attrs : (string * value) list }
      (** Raw events, in recording order within a domain. *)

type collector

val create : unit -> collector
(** A fresh, empty collector.  Its epoch (for relative timestamps in
    exports) is the creation instant. *)

val install : collector -> unit
(** Make [c] the process-wide current collector: instrumented sites
    start recording into it. *)

val uninstall : unit -> unit
(** Disable tracing.  Spans already open keep their buffer and still
    record their end event; new spans become no-ops. *)

val enabled : unit -> bool
(** Whether a collector is currently installed. *)

type span
(** A handle to an open span.  The null span (when tracing is
    disabled) ignores every operation. *)

val null_span : span

val start : ?attrs:(string * value) list -> string -> span
(** Open a span on the calling domain.  No-op returning {!null_span}
    when tracing is disabled. *)

val add_attr : span -> string -> value -> unit
(** Attach an attribute to an open span (exported on its end event). *)

val finish : ?attrs:(string * value) list -> span -> unit
(** Close the span.  Idempotent; no-op on {!null_span}. *)

val with_span : ?attrs:(string * value) list -> string -> (span -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span, closing it even when
    [f] raises.  The fast path when disabled is one atomic load. *)

val epoch_ns : collector -> int64

val events : collector -> (int * entry list) list
(** Per-domain event streams, recording order, sorted by domain id.
    Safe to call after the recording domains have terminated. *)

type completed = {
  name : string;
  domain : int;
  depth : int;  (** Nesting depth at open time; roots are [0]. *)
  start_ns : int64;
  stop_ns : int64;
  attrs : (string * value) list;
}

val completed_spans : collector -> completed list
(** Begin/end pairs matched per domain (stack discipline), ordered by
    [(domain, start_ns)].  Spans still open are dropped. *)

val value_to_json : value -> Noc_json.Json.t
val attrs_to_json : (string * value) list -> Noc_json.Json.t
(** Attributes as a JSON object, recording order. *)
