module Json = Noc_json.Json

type t = { emit : Json.t -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let line v = Json.to_string v

let to_channel oc =
  let mutex = Mutex.create () in
  {
    emit =
      (fun v ->
        let s = line v in
        Mutex.lock mutex;
        output_string oc s;
        output_char oc '\n';
        Mutex.unlock mutex);
    close =
      (fun () ->
        Mutex.lock mutex;
        flush oc;
        Mutex.unlock mutex);
  }

(* Write-to-temp + rename-on-close: the destination path either holds
   the complete stream or nothing.  The rename is atomic on POSIX
   because the temporary lives in the destination's directory (same
   filesystem). *)
let to_file path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out tmp in
  let inner = to_channel oc in
  {
    inner with
    close =
      (fun () ->
        inner.close ();
        close_out oc;
        Sys.rename tmp path);
  }

let memory () =
  let mutex = Mutex.create () in
  let events = ref [] in
  let sink =
    {
      emit =
        (fun v ->
          Mutex.lock mutex;
          events := v :: !events;
          Mutex.unlock mutex);
      close = (fun () -> ());
    }
  in
  let contents () =
    Mutex.lock mutex;
    let evs = List.rev !events in
    Mutex.unlock mutex;
    evs
  in
  (sink, contents)

let tee a b =
  {
    emit =
      (fun v ->
        a.emit v;
        b.emit v);
    close =
      (fun () ->
        a.close ();
        b.close ());
  }
