(** Exporters over a {!Trace.collector}'s merged event buffers.

    Three formats, one source of truth:
    - {!chrome}: Chrome trace-event JSON (the ["traceEvents"] object
      form) — load it in Perfetto ({:https://ui.perfetto.dev}) or
      [chrome://tracing].  Spans become ["B"]/["E"] phase pairs, the
      domain id is the [tid], attributes become [args].
    - {!jsonl}: the [noc-trace/1] JSONL stream — a schema header line,
      one [span_begin]/[span_end] line per event (timestamps in
      nanoseconds relative to the collector epoch, monotone per
      domain), then one [metric] line per registered metric.  Composes
      with any {!Sink.t} via {!to_sink}; validated by the
      [NOC-TRC-*] lint pass.
    - {!pp_summary}: a human-readable per-span-name table with counts,
      total wall time, and shares of the traced interval. *)

val schema : string
(** ["noc-trace/1"]. *)

val chrome : ?metrics:Metrics.metric list -> Trace.collector -> Noc_json.Json.t
(** Metrics ride along as string values under ["otherData"]. *)

val jsonl :
  ?metrics:Metrics.metric list -> Trace.collector -> Noc_json.Json.t list
(** Lines in stream order: header, events merged across domains in
    timestamp order (per-domain order preserved), metrics. *)

val to_sink : Sink.t -> Noc_json.Json.t list -> unit
(** Emit every line, then close the sink. *)

val phase_totals_ms : Trace.collector -> (string * float) list
(** Total wall milliseconds per span name, name-sorted.  Nested spans
    each count their own full extent (hierarchical attribution, not a
    partition). *)

val pp_summary :
  ?metrics:Metrics.metric list -> Format.formatter -> Trace.collector -> unit
(** Name-sorted table: count, total ms, share of the traced wall
    interval.  Shares can sum past 100% — nested spans overlap their
    parents and domains run concurrently. *)
