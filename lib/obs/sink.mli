(** Pluggable, internally serialized JSONL sinks.

    A sink consumes one JSON value per event and writes it as one line.
    Sinks serialize concurrent emits with an internal mutex, so code on
    any domain can emit without coordination.  This is the shared
    transport of the observability layer: the service's telemetry
    stream and the tracer's [noc-trace/1] export both speak it (the
    service re-exports this very type as [Telemetry.sink]). *)

module Json = Noc_json.Json

type t = { emit : Json.t -> unit; close : unit -> unit }

val null : t
(** Swallows everything. *)

val to_channel : out_channel -> t
(** Mutex-serialized writer; [close] flushes but does not close the
    channel (the caller owns it). *)

val to_file : string -> t
(** Atomic file writer: events accumulate in a temporary file next to
    [path] and [close] renames it into place, so a killed run never
    leaves a truncated half-line at [path] — either the complete
    stream is there or the file is absent (a [*.tmp] leftover may
    remain and can be deleted).
    @raise Sys_error when the temporary file cannot be created. *)

val memory : unit -> t * (unit -> Json.t list)
(** In-memory sink and an accessor returning events oldest-first. *)

val tee : t -> t -> t
(** Duplicates every emit (and close) to both sinks. *)

val line : Json.t -> string
(** The JSONL rendering of one event (no trailing newline). *)
