(** Monotonic time source for spans and histograms.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] (C stub, no extra
    dependency): unaffected by wall-clock adjustments, so a span's
    [stop - start] is always a real elapsed duration.  The origin is
    unspecified (typically boot time); only differences are
    meaningful. *)

val now_ns : unit -> int64
(** Current monotonic time in nanoseconds. *)

val ms_between : start_ns:int64 -> stop_ns:int64 -> float
(** [stop - start] in (fractional) milliseconds. *)
