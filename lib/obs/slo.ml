module Json = Noc_json.Json

type objective =
  | P99_below of { metric : string; threshold_ms : float }
  | Gauge_at_least of { metric : string; floor : float }
  | Counter_at_most of { metric : string; max_value : float }
  | Ratio_at_least of { num : string; den : string; floor : float }

type t = { slo_name : string; objective : objective }

type verdict = {
  slo : string;
  ok : bool;
  value : float option;  (* the observed quantity, when there was data *)
  detail : string;
}

(* Declared service objectives.  Thresholds are deliberately generous:
   the gate exists to catch a service that is broken, and to give
   campaigns/CI a knob ([override]) for injecting a violation. *)
let defaults =
  [
    {
      slo_name = "submit_p99_ms";
      objective =
        P99_below { metric = "noc_serve_submit_to_result_ms"; threshold_ms = 30_000. };
    };
    {
      slo_name = "queue_wait_p99_ms";
      objective =
        P99_below { metric = "noc_pool_queue_wait_ms"; threshold_ms = 30_000. };
    };
    {
      slo_name = "store_hit_rate";
      objective =
        Ratio_at_least
          {
            num = "noc_store_hits_total";
            den = "noc_store_lookups_total";
            floor = 0.;
          };
    };
    {
      slo_name = "dlf_agreement";
      objective =
        Counter_at_most
          { metric = "noc_dlf_disagreements_total"; max_value = 0. };
    };
    {
      slo_name = "campaign_cell_p99_ms";
      objective =
        P99_below { metric = "noc_campaign_cell_ms"; threshold_ms = 600_000. };
    };
  ]

(* Metric lookup by base name, merging labeled instruments of one
   family (per-method histograms fold into one distribution). *)

let matching metrics name =
  List.filter
    (fun m -> Metrics.metric_base m = name || Metrics.metric_name m = name)
    metrics

let merge_histograms = function
  | [] -> None
  | first :: rest ->
      let merge a b =
        match (a, b) with
        | ( Metrics.Histogram
              ({ buckets = ba; overflow = oa; count = ca; sum = sa; _ } as h),
            Metrics.Histogram
              { buckets = bb; overflow = ob; count = cb; sum = sb; _ } )
          when List.map fst ba = List.map fst bb ->
            Metrics.Histogram
              {
                h with
                buckets =
                  List.map2 (fun (le, x) (_, y) -> (le, x + y)) ba bb;
                overflow = oa + ob;
                count = ca + cb;
                sum = sa +. sb;
              }
        | _ -> a
      in
      Some (List.fold_left merge first rest)

let counter_total metrics name =
  match matching metrics name with
  | [] -> None
  | ms ->
      Some
        (List.fold_left
           (fun acc m ->
             match m with
             | Metrics.Counter { value; _ } -> acc +. float_of_int value
             | _ -> acc)
           0. ms)

let gauge_min metrics name =
  let values =
    List.filter_map
      (function Metrics.Gauge { value; _ } -> Some value | _ -> None)
      (matching metrics name)
  in
  match values with
  | [] -> None
  | v :: rest -> Some (List.fold_left Float.min v rest)

let evaluate_one metrics t =
  let vacuous detail = { slo = t.slo_name; ok = true; value = None; detail } in
  match t.objective with
  | P99_below { metric; threshold_ms } -> (
      let hists =
        List.filter
          (function Metrics.Histogram _ -> true | _ -> false)
          (matching metrics metric)
      in
      match merge_histograms hists with
      | None -> vacuous (Printf.sprintf "%s: no data" metric)
      | Some h -> (
          match Metrics.quantile ~q:0.99 h with
          | None -> vacuous (Printf.sprintf "%s: no samples" metric)
          | Some p99 ->
              {
                slo = t.slo_name;
                ok = p99 <= threshold_ms;
                value = Some p99;
                detail =
                  Printf.sprintf "p99(%s) = %.3f ms (threshold %.3f)" metric
                    p99 threshold_ms;
              }))
  | Gauge_at_least { metric; floor } -> (
      match gauge_min metrics metric with
      | None -> vacuous (Printf.sprintf "%s: no data" metric)
      | Some v ->
          {
            slo = t.slo_name;
            ok = v >= floor;
            value = Some v;
            detail = Printf.sprintf "%s = %g (floor %g)" metric v floor;
          })
  | Counter_at_most { metric; max_value } -> (
      match counter_total metrics metric with
      | None -> vacuous (Printf.sprintf "%s: no data" metric)
      | Some v ->
          {
            slo = t.slo_name;
            ok = v <= max_value;
            value = Some v;
            detail = Printf.sprintf "%s = %g (max %g)" metric v max_value;
          })
  | Ratio_at_least { num; den; floor } -> (
      match (counter_total metrics num, counter_total metrics den) with
      | _, (None | Some 0.) -> vacuous (Printf.sprintf "%s: no traffic" den)
      | None, _ -> vacuous (Printf.sprintf "%s: no data" num)
      | Some n, Some d ->
          let ratio = n /. d in
          {
            slo = t.slo_name;
            ok = ratio >= floor;
            value = Some ratio;
            detail =
              Printf.sprintf "%s/%s = %.6f (floor %.6f)" num den ratio floor;
          })

let evaluate slos metrics = List.map (evaluate_one metrics) slos
let burned verdicts = List.filter (fun v -> not v.ok) verdicts

(* Thresholds are overridable as NAME=VALUE so a campaign or smoke job
   can inject a violation without recompiling. *)
let override slos spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "bad SLO override %S (expected NAME=VALUE)" spec)
  | Some i -> (
      let name = String.sub spec 0 i in
      let value_str = String.sub spec (i + 1) (String.length spec - i - 1) in
      match float_of_string_opt value_str with
      | None -> Error (Printf.sprintf "bad SLO override value %S" value_str)
      | Some value ->
          if not (List.exists (fun t -> t.slo_name = name) slos) then
            Error
              (Printf.sprintf "unknown SLO %S (have: %s)" name
                 (String.concat ", " (List.map (fun t -> t.slo_name) slos)))
          else
            Ok
              (List.map
                 (fun t ->
                   if t.slo_name <> name then t
                   else
                     let objective =
                       match t.objective with
                       | P99_below o -> P99_below { o with threshold_ms = value }
                       | Gauge_at_least o -> Gauge_at_least { o with floor = value }
                       | Counter_at_most o ->
                           Counter_at_most { o with max_value = value }
                       | Ratio_at_least o -> Ratio_at_least { o with floor = value }
                     in
                     { t with objective })
                 slos))

(* Exposition: one [noc_slo_ok{slo="..."}] gauge per verdict, appended
   to the scrape so dashboards alert off the same endpoint. *)
let to_metrics verdicts =
  List.map
    (fun v ->
      Metrics.Gauge
        {
          name = "noc_slo_ok";
          labels = [ ("slo", v.slo) ];
          value = (if v.ok then 1. else 0.);
        })
    verdicts

let verdict_to_json v =
  Json.Obj
    ([
       ("slo", Json.Str v.slo);
       ("ok", Json.Bool v.ok);
       ("detail", Json.Str v.detail);
     ]
    @ match v.value with None -> [] | Some x -> [ ("value", Json.Num x) ])

let to_json verdicts = Json.Arr (List.map verdict_to_json verdicts)

let verdicts_of_json json =
  let ( let* ) = Result.bind in
  match json with
  | Json.Arr entries ->
      let parse = function
        | Json.Obj fields ->
            let* slo =
              match List.assoc_opt "slo" fields with
              | Some (Json.Str s) -> Ok s
              | _ -> Error "slo verdict: missing slo"
            in
            let* ok =
              match List.assoc_opt "ok" fields with
              | Some (Json.Bool b) -> Ok b
              | _ -> Error "slo verdict: missing ok"
            in
            let detail =
              match List.assoc_opt "detail" fields with
              | Some (Json.Str s) -> s
              | _ -> ""
            in
            let value =
              match List.assoc_opt "value" fields with
              | Some (Json.Num n) -> Some n
              | _ -> None
            in
            Ok { slo; ok; value; detail }
        | _ -> Error "slo verdict: expected object"
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
            let* v = parse e in
            go (v :: acc) rest
      in
      go [] entries
  | _ -> Error "slo section: expected array"

let pp_verdict ppf v =
  Format.fprintf ppf "%-24s %s  %s" v.slo
    (if v.ok then "ok " else "BURNED")
    v.detail
