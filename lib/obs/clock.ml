external now_ns : unit -> int64 = "noc_obs_monotonic_ns"

let ms_between ~start_ns ~stop_ns =
  Int64.to_float (Int64.sub stop_ns start_ns) /. 1e6
