/* Monotonic clock for the tracing layer.  CLOCK_MONOTONIC is POSIX
   and immune to wall-clock adjustments (NTP slews, manual resets),
   which is what span durations need; Unix.gettimeofday is neither. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value noc_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + ts.tv_nsec);
}
