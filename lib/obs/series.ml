module Json = Noc_json.Json

let schema = "noc-series/1"

(* One fixed-capacity ring per scalar key: parallel timestamp/value
   arrays, oldest sample overwritten once the window is full. *)
type ring = {
  ts : float array;
  values : float array;
  mutable start : int;
  mutable len : int;
}

type t = {
  interval_s : float;
  window : int;
  rings : (string, ring) Hashtbl.t;
  mutex : Mutex.t;
}

let create ?(interval_s = 1.) ?(window = 120) () =
  if interval_s <= 0. then invalid_arg "Series.create: interval_s <= 0";
  if window <= 0 then invalid_arg "Series.create: window <= 0";
  {
    interval_s;
    window;
    rings = Hashtbl.create 32;
    mutex = Mutex.create ();
  }

let interval_s t = t.interval_s
let window t = t.window

let ring_push t key ts value =
  let r =
    match Hashtbl.find_opt t.rings key with
    | Some r -> r
    | None ->
        let r =
          {
            ts = Array.make t.window 0.;
            values = Array.make t.window 0.;
            start = 0;
            len = 0;
          }
        in
        Hashtbl.replace t.rings key r;
        r
  in
  if r.len < t.window then (
    let i = (r.start + r.len) mod t.window in
    r.ts.(i) <- ts;
    r.values.(i) <- value;
    r.len <- r.len + 1)
  else (
    r.ts.(r.start) <- ts;
    r.values.(r.start) <- value;
    r.start <- (r.start + 1) mod t.window)

(* Flatten a metric to scalar series points: counters and gauges are
   their value; a histogram contributes its running count and sum
   (quantiles are computed from the live snapshot, not the series). *)
let scalar_points m =
  let name = Metrics.metric_name m in
  match m with
  | Metrics.Counter { value; _ } -> [ (name, float_of_int value) ]
  | Metrics.Gauge { value; _ } -> [ (name, value) ]
  | Metrics.Histogram { count; sum; _ } ->
      [
        (name ^ "_count", float_of_int count);
        (name ^ "_sum", sum);
      ]

let sample ?now_s t =
  let now = match now_s with Some s -> s | None -> Unix.gettimeofday () in
  let metrics = Metrics.snapshot () in
  Mutex.lock t.mutex;
  List.iter
    (fun m ->
      List.iter (fun (key, v) -> ring_push t key now v) (scalar_points m))
    metrics;
  Mutex.unlock t.mutex

let keys t =
  Mutex.lock t.mutex;
  let ks = Hashtbl.fold (fun k _ acc -> k :: acc) t.rings [] in
  Mutex.unlock t.mutex;
  List.sort compare ks

let points t key =
  Mutex.lock t.mutex;
  let result =
    match Hashtbl.find_opt t.rings key with
    | None -> []
    | Some r ->
        List.init r.len (fun i ->
            let j = (r.start + i) mod t.window in
            (r.ts.(j), r.values.(j)))
  in
  Mutex.unlock t.mutex;
  result

(* Average per-second rate over the window: (last - first) / elapsed.
   Meaningful for monotone series (counters, histogram counts). *)
let rate t key =
  match points t key with
  | [] | [ _ ] -> None
  | (t0, v0) :: rest ->
      let tn, vn = List.nth rest (List.length rest - 1) in
      if tn <= t0 then None else Some ((vn -. v0) /. (tn -. t0))

let to_json t =
  Mutex.lock t.mutex;
  let series =
    Hashtbl.fold
      (fun key r acc ->
        let pts =
          List.init r.len (fun i ->
              let j = (r.start + i) mod t.window in
              Json.Arr [ Json.Num r.ts.(j); Json.Num r.values.(j) ])
        in
        (key, pts) :: acc)
      t.rings []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (key, pts) ->
           Json.Obj [ ("key", Json.Str key); ("points", Json.Arr pts) ])
  in
  Mutex.unlock t.mutex;
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("interval_s", Json.Num t.interval_s);
      ("window", Json.Num (float_of_int t.window));
      ("series", Json.Arr series);
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name = function
    | Json.Obj fields -> (
        match List.assoc_opt name fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "Series.of_json: missing %S" name))
    | _ -> Error "Series.of_json: expected object"
  in
  let num = function
    | Json.Num n -> Ok n
    | _ -> Error "Series.of_json: expected number"
  in
  let* schema_v = field "schema" json in
  let* () =
    match schema_v with
    | Json.Str s when s = schema -> Ok ()
    | _ -> Error (Printf.sprintf "Series.of_json: expected schema %S" schema)
  in
  let* interval_s = Result.bind (field "interval_s" json) num in
  let* window_f = Result.bind (field "window" json) num in
  let window = int_of_float window_f in
  if interval_s <= 0. || window <= 0 then
    Error "Series.of_json: bad interval/window"
  else
    let* series =
      match field "series" json with
      | Ok (Json.Arr entries) -> Ok entries
      | Ok _ -> Error "Series.of_json: series must be an array"
      | Error e -> Error e
    in
    let t = create ~interval_s ~window () in
    let rec load = function
      | [] -> Ok t
      | entry :: rest ->
          let* key =
            match field "key" entry with
            | Ok (Json.Str k) -> Ok k
            | _ -> Error "Series.of_json: entry missing key"
          in
          let* pts =
            match field "points" entry with
            | Ok (Json.Arr pts) -> Ok pts
            | _ -> Error "Series.of_json: entry missing points"
          in
          let rec push = function
            | [] -> Ok ()
            | Json.Arr [ Json.Num ts; Json.Num v ] :: more ->
                ring_push t key ts v;
                push more
            | _ -> Error "Series.of_json: bad point"
          in
          let* () = push pts in
          load rest
    in
    load series

(* Collector --------------------------------------------------------- *)

type collector = { stop_flag : bool Atomic.t; domain : unit Domain.t }

let start t =
  let stop_flag = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        (* Sleep in short slices so [stop] joins promptly even with a
           multi-second interval. *)
        let rec pause remaining =
          if remaining > 0. && not (Atomic.get stop_flag) then (
            let slice = Float.min 0.05 remaining in
            Unix.sleepf slice;
            pause (remaining -. slice))
        in
        while not (Atomic.get stop_flag) do
          sample t;
          pause t.interval_s
        done)
  in
  { stop_flag; domain }

let stop c =
  Atomic.set c.stop_flag true;
  Domain.join c.domain
