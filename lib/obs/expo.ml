module Json = Noc_json.Json

let schema = "noc-metrics/1"

(* Number formatting: Prometheus values are decimal floats; counters
   and bucket counts stay integral so scrapes diff cleanly. *)
let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      let pair (k, v) =
        Printf.sprintf "%s=\"%s\"" k (Metrics.escape_label_value v)
      in
      "{" ^ String.concat "," (List.map pair labels) ^ "}"

(* Text exposition (Prometheus text format v0.0.4) ------------------- *)

let kind_of = function
  | Metrics.Counter _ -> "counter"
  | Metrics.Gauge _ -> "gauge"
  | Metrics.Histogram _ -> "histogram"

let render_metric b m =
  let base = Metrics.metric_base m in
  match m with
  | Metrics.Counter { labels; value; _ } ->
      Buffer.add_string b
        (Printf.sprintf "%s%s %d\n" base (render_labels labels) value)
  | Metrics.Gauge { labels; value; _ } ->
      Buffer.add_string b
        (Printf.sprintf "%s%s %s\n" base (render_labels labels) (fmt_num value))
  | Metrics.Histogram { labels; buckets; overflow; count; sum; _ } ->
      let cumulative = ref 0 in
      List.iter
        (fun (le, n) ->
          cumulative := !cumulative + n;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" base
               (render_labels (labels @ [ ("le", fmt_num le) ]))
               !cumulative))
        buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket%s %d\n" base
           (render_labels (labels @ [ ("le", "+Inf") ]))
           (!cumulative + overflow));
      Buffer.add_string b
        (Printf.sprintf "%s_sum%s %s\n" base (render_labels labels)
           (fmt_num sum));
      Buffer.add_string b
        (Printf.sprintf "%s_count%s %d\n" base (render_labels labels) count)

let text metrics =
  (* Group by base name so labeled instruments share one TYPE line;
     snapshot order is by identity, which can interleave bases. *)
  let ordered =
    List.stable_sort
      (fun a b ->
        compare
          (Metrics.metric_base a, Metrics.metric_labels a)
          (Metrics.metric_base b, Metrics.metric_labels b))
      metrics
  in
  let b = Buffer.create 1024 in
  let last_base = ref "" in
  List.iter
    (fun m ->
      let base = Metrics.metric_base m in
      if base <> !last_base then (
        last_base := base;
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" base (kind_of m)));
      render_metric b m)
    ordered;
  Buffer.contents b

(* JSON snapshot ----------------------------------------------------- *)

let json metrics =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("metrics", Json.Arr (List.map Metrics.to_json metrics));
    ]

(* The inverse: what [noc_tool top] uses to rebuild typed metrics from
   a wire Metrics reply so it can reuse Metrics.quantile and the text
   renderer client-side.  Decoded values are plain variant data — they
   are not registered as live instruments. *)
let metrics_of_json v =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" v with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) ->
        Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
    | _ -> Error "missing \"schema\" field"
  in
  let* items =
    match Json.member "metrics" v with
    | Some (Json.Arr items) -> Ok items
    | _ -> Error "missing \"metrics\" array"
  in
  let str name item =
    match Json.member name item with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "missing string field %S" name)
  in
  let num name item =
    match Json.member name item with
    | Some (Json.Num n) -> Ok n
    | _ -> Error (Printf.sprintf "missing numeric field %S" name)
  in
  let int name item = Result.map int_of_float (num name item) in
  let labels item =
    match Json.member "labels" item with
    | None -> Ok []
    | Some (Json.Obj pairs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Str value) :: rest -> go ((k, value) :: acc) rest
          | (k, _) :: _ ->
              Error (Printf.sprintf "label %S must be a string" k)
        in
        go [] pairs
    | Some _ -> Error "\"labels\" must be an object"
  in
  let metric item =
    let* kind = str "kind" item in
    let* name = str "name" item in
    let* labels = labels item in
    match kind with
    | "counter" ->
        let* value = int "value" item in
        Ok (Metrics.Counter { name; labels; value })
    | "gauge" ->
        let* value = num "value" item in
        Ok (Metrics.Gauge { name; labels; value })
    | "histogram" ->
        let* buckets =
          match Json.member "buckets" item with
          | Some (Json.Arr bs) ->
              let rec go acc = function
                | [] -> Ok (List.rev acc)
                | b :: rest ->
                    let* le = num "le" b in
                    let* n = int "count" b in
                    go ((le, n) :: acc) rest
              in
              go [] bs
          | _ -> Error "missing \"buckets\" array"
        in
        let* overflow = int "overflow" item in
        let* count = int "count" item in
        let* sum = num "sum" item in
        Ok (Metrics.Histogram { name; labels; buckets; overflow; count; sum })
    | k -> Error (Printf.sprintf "unknown metric kind %S" k)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
        let* m = metric item in
        go (m :: acc) rest
  in
  go [] items

(* Format checker ---------------------------------------------------- *)

(* A strict parser for the subset of the text format we emit, shared
   by the qcheck exposition property and the smoke jobs: every sample
   must parse, reference a declared TYPE, carry well-formed escaped
   labels, and histograms must be cumulative with a trailing +Inf
   bucket that equals their _count. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

let strip_suffix name suffix =
  let n = String.length name and k = String.length suffix in
  if n >= k && String.sub name (n - k) k = suffix then
    Some (String.sub name 0 (n - k))
  else None

let parse_name line pos =
  let n = String.length line in
  let start = pos in
  let ok c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let pos = ref pos in
  while !pos < n && ok line.[!pos] do
    incr pos
  done;
  if !pos = start then Error "expected metric name"
  else Ok (String.sub line start (!pos - start), !pos)

let parse_label_value line pos =
  (* [pos] is just past the opening quote. *)
  let n = String.length line in
  let b = Buffer.create 16 in
  let rec go i =
    if i >= n then Error "unterminated label value"
    else
      match line.[i] with
      | '"' -> Ok (Buffer.contents b, i + 1)
      | '\\' ->
          if i + 1 >= n then Error "dangling backslash"
          else (
            (match line.[i + 1] with
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | 'n' -> Buffer.add_char b '\n'
            | c ->
                Buffer.add_char b '\\';
                Buffer.add_char b c);
            go (i + 2))
      | c ->
          Buffer.add_char b c;
          go (i + 1)
  in
  go pos

let parse_labels line pos =
  (* [pos] is at '{'. *)
  let n = String.length line in
  let rec pairs acc pos =
    match parse_name line pos with
    | Error e -> Error e
    | Ok (key, pos) ->
        if pos >= n || line.[pos] <> '=' then Error "expected = after label key"
        else if pos + 1 >= n || line.[pos + 1] <> '"' then
          Error "expected quoted label value"
        else
          match parse_label_value line (pos + 2) with
          | Error e -> Error e
          | Ok (value, pos) ->
              let acc = (key, value) :: acc in
              if pos < n && line.[pos] = ',' then pairs acc (pos + 1)
              else if pos < n && line.[pos] = '}' then
                Ok (List.rev acc, pos + 1)
              else Error "expected , or } in labels"
  in
  if pos < String.length line && line.[pos] = '{' then
    if pos + 1 < n && line.[pos + 1] = '}' then Ok ([], pos + 2)
    else pairs [] (pos + 1)
  else Ok ([], pos)

let parse_sample line =
  match parse_name line 0 with
  | Error e -> Error e
  | Ok (name, pos) -> (
      match parse_labels line pos with
      | Error e -> Error e
      | Ok (labels, pos) ->
          if pos >= String.length line || line.[pos] <> ' ' then
            Error "expected space before value"
          else
            let rest =
              String.sub line (pos + 1) (String.length line - pos - 1)
            in
            let value_str =
              match String.index_opt rest ' ' with
              | Some i -> String.sub rest 0 i  (* optional timestamp *)
              | None -> rest
            in
            let value_str =
              if value_str = "+Inf" then "infinity"
              else if value_str = "-Inf" then "neg_infinity"
              else value_str
            in
            (match float_of_string_opt value_str with
            | None -> Error (Printf.sprintf "bad value %S" value_str)
            | Some v -> Ok { s_name = name; s_labels = labels; s_value = v }))

let check_text s =
  let lines = String.split_on_char '\n' s in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref [] in
  let err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then (
        let rest = String.sub line 7 (String.length line - 7) in
        match String.split_on_char ' ' rest with
        | [ name; kind ]
          when List.mem kind [ "counter"; "gauge"; "histogram" ] ->
            if Hashtbl.mem types name then
              fail lineno (Printf.sprintf "duplicate TYPE for %s" name)
            else Hashtbl.replace types name kind
        | _ -> fail lineno "malformed TYPE line")
      else if String.length line >= 1 && line.[0] = '#' then ()
      else
        match parse_sample line with
        | Error e -> fail lineno e
        | Ok sample -> samples := (lineno, sample) :: !samples)
    lines;
  let samples = List.rev !samples in
  (* Every sample must belong to a declared family. *)
  let family name =
    if Hashtbl.mem types name then Some (name, Hashtbl.find types name)
    else
      let of_suffix suffix =
        match strip_suffix name suffix with
        | Some base
          when Hashtbl.find_opt types base = Some "histogram" ->
            Some (base, "histogram")
        | _ -> None
      in
      match of_suffix "_bucket" with
      | Some f -> Some f
      | None -> (
          match of_suffix "_sum" with
          | Some f -> Some f
          | None -> of_suffix "_count")
  in
  List.iter
    (fun (lineno, s) ->
      match family s.s_name with
      | None -> fail lineno (Printf.sprintf "sample %s has no TYPE" s.s_name)
      | Some _ -> ())
    samples;
  (* Histogram invariants: buckets cumulative, +Inf present and equal
     to _count, per label set. *)
  let bucket_groups : (string * (string * string) list, float list) Hashtbl.t =
    Hashtbl.create 16
  and inf_counts = Hashtbl.create 16
  and counts = Hashtbl.create 16 in
  List.iter
    (fun (_, s) ->
      match strip_suffix s.s_name "_bucket" with
      | Some base when Hashtbl.find_opt types base = Some "histogram" ->
          let le = List.assoc_opt "le" s.s_labels in
          let rest = List.filter (fun (k, _) -> k <> "le") s.s_labels in
          if le = Some "+Inf" then
            Hashtbl.replace inf_counts (base, rest) s.s_value
          else
            Hashtbl.replace bucket_groups (base, rest)
              (s.s_value
              :: Option.value ~default:[]
                   (Hashtbl.find_opt bucket_groups (base, rest)))
      | _ -> (
          match strip_suffix s.s_name "_count" with
          | Some base when Hashtbl.find_opt types base = Some "histogram" ->
              Hashtbl.replace counts (base, s.s_labels) s.s_value
          | _ -> ()))
    samples;
  Hashtbl.iter
    (fun key buckets ->
      let buckets = List.rev buckets in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      if not (non_decreasing buckets) then
        fail 0 (Printf.sprintf "histogram %s buckets not cumulative" (fst key));
      match Hashtbl.find_opt inf_counts key with
      | None ->
          fail 0 (Printf.sprintf "histogram %s missing +Inf bucket" (fst key))
      | Some inf -> (
          (match buckets with
          | [] -> ()
          | _ ->
              let last = List.nth buckets (List.length buckets - 1) in
              if last > inf then
                fail 0
                  (Printf.sprintf "histogram %s +Inf below last bucket"
                     (fst key)));
          match Hashtbl.find_opt counts key with
          | Some c when c <> inf ->
              fail 0
                (Printf.sprintf "histogram %s _count disagrees with +Inf"
                   (fst key))
          | _ -> ()))
    bucket_groups;
  match !err with None -> Ok () | Some e -> Error e
