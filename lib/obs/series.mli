(** Fixed-size ring-buffer time series over the metrics registry.

    A {!t} holds one ring per scalar key (counter/gauge value,
    histogram running [_count]/[_sum]), each capped at [window]
    samples; {!sample} appends one point per key from a fresh
    {!Metrics.snapshot}, overwriting the oldest once full.  A
    {!collector} runs {!sample} on its own domain every [interval_s]
    seconds (default 1s), so a long-lived daemon carries a sliding
    window of its own recent history at a fixed memory bound.

    The whole store round-trips through {!to_json}/{!of_json}
    ([noc-series/1]), which is how the daemon ships its window to
    [noc_tool top]. *)

type t

val create : ?interval_s:float -> ?window:int -> unit -> t
(** Empty store; [interval_s] defaults to 1s, [window] to 120 samples
    (2 minutes at the default cadence).
    @raise Invalid_argument on a non-positive interval or window. *)

val interval_s : t -> float
val window : t -> int

val sample : ?now_s:float -> t -> unit
(** Append one point per scalar key from a fresh registry snapshot;
    [now_s] (default [Unix.gettimeofday ()]) stamps the points. *)

val keys : t -> string list
(** All keys with at least one sample, sorted. *)

val points : t -> string -> (float * float) list
(** [(timestamp, value)] pairs, oldest first; empty for unknown keys. *)

val rate : t -> string -> float option
(** Average per-second rate across the window ([(last - first) /
    elapsed]); [None] with fewer than two samples.  Meaningful for
    monotone series. *)

val to_json : t -> Noc_json.Json.t
val of_json : Noc_json.Json.t -> (t, string) result
(** [noc-series/1] round-trip: [of_json (to_json t)] rebuilds an
    equivalent store ([to_json] output is identical). *)

type collector

val start : t -> collector
(** Spawn a domain sampling [t] every [interval_s t] seconds. *)

val stop : collector -> unit
(** Signal and join the collector domain (returns within ~50ms). *)
