(** Tiny deterministic pseudo-random generator (SplitMix64), so every
    benchmark instantiation is bit-identical across runs and platforms.
    Not for cryptography; for reproducible workload synthesis only.

    The state is an {e immutable value}: each operation returns the
    drawn result together with the successor state, and callers thread
    that state explicitly.  There is no hidden mutation anywhere, so
    the module is domain-safe by construction — benchmark builds can
    run concurrently on a {!Noc_pool.Pool} without sharing anything.
    The streams are bit-identical to the historical in-place
    implementation. *)

type t
(** An immutable generator state. *)

val make : int -> t
(** Seeded state; equal seeds give equal streams. *)

val next : t -> int64 * t
(** Next raw 64-bit value and the successor state. *)

val int : t -> int -> int * t
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float -> float * t
(** [float t x] is uniform in [0, x). *)

val pick : t -> 'a array -> 'a * t
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val sample_distinct : t -> int -> exclude:int -> count:int -> int list * t
(** [sample_distinct t bound ~exclude ~count] draws [count] distinct
    values from [0, bound) \ {exclude}, in draw order.
    @raise Invalid_argument when fewer than [count] values exist. *)
