(* D36_k: 36 processing cores, each sending data to k other cores
   (k = 4, 6, 8 in the paper).  Destinations and bandwidths are drawn
   from a seeded generator, so each variant is fixed forever.  The
   paper uses these as its "complex traffic pattern" stress cases:
   the many-to-many structure makes the synthesized topologies' CDGs
   cyclic, unlike D26_media's pipelines (Figures 8 vs 9). *)

open Noc_model

let n_cores = 36

let build_traffic k () =
  let traffic = Traffic.create ~n_cores in
  let rec sources rng src =
    if src < n_cores then begin
      let dests, rng = Rng.sample_distinct rng n_cores ~exclude:src ~count:k in
      let rng =
        List.fold_left
          (fun rng dst ->
            (* Quantized 25..200 MB/s: realistic inter-core streams. *)
            let quantum, rng = Rng.int rng 8 in
            let bandwidth = 25. *. float_of_int (1 + quantum) in
            ignore
              (Traffic.add_flow traffic ~src:(Ids.Core.of_int src)
                 ~dst:(Ids.Core.of_int dst) ~bandwidth);
            rng)
          rng dests
      in
      sources rng (src + 1)
    end
  in
  sources (Rng.make (4242 + k)) 0;
  traffic

let make k =
  {
    Spec.name = Printf.sprintf "D36_%d" k;
    description =
      Printf.sprintf
        "36 processing cores, each streaming to %d pseudo-randomly chosen peers"
        k;
    n_cores;
    build = build_traffic k;
  }

let d36_4 = make 4
let d36_6 = make 6
let d36_8 = make 8
