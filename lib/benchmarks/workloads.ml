open Noc_model

let bandwidth_proportional net ~packet_length ~duration ~capacity_mbps ~seed =
  if duration < 1 then invalid_arg "Workloads.bandwidth_proportional: duration < 1";
  if packet_length < 1 then
    invalid_arg "Workloads.bandwidth_proportional: packet_length < 1";
  if capacity_mbps <= 0. then
    invalid_arg "Workloads.bandwidth_proportional: capacity <= 0";
  (* Generator state and packet ids are threaded explicitly through the
     per-flow/per-packet recursion; nothing outlives the call. *)
  let packets_for rng next_id (f : Traffic.flow) =
    match Network.route net f.Traffic.id with
    | [] -> ([], rng, next_id)
    | route ->
        let flits =
          f.Traffic.bandwidth /. capacity_mbps *. float_of_int duration
        in
        let n = max 1 (int_of_float (flits /. float_of_int packet_length)) in
        let interval = max 1 (duration / n) in
        let rec gen rng next_id j acc =
          if j = n then (List.rev acc, rng, next_id)
          else begin
            let jitter, rng = Rng.int rng (max 1 (interval / 2)) in
            let p =
              Noc_sim.Packet.make ~id:next_id ~flow:f.Traffic.id ~route
                ~length:packet_length
                ~inject_at:(min (duration - 1) ((j * interval) + jitter))
            in
            gen rng (next_id + 1) (j + 1) (p :: acc)
          end
        in
        gen rng next_id 0 []
  in
  let rec all rng next_id acc = function
    | [] -> List.concat (List.rev acc)
    | f :: rest ->
        let ps, rng, next_id = packets_for rng next_id f in
        all rng next_id (ps :: acc) rest
  in
  all (Rng.make seed) 0 [] (Traffic.flows (Network.traffic net))

let offered_load net ~capacity_mbps =
  let flows =
    List.filter
      (fun (f : Traffic.flow) -> Network.route net f.Traffic.id <> [])
      (Traffic.flows (Network.traffic net))
  in
  match flows with
  | [] -> 0.
  | _ ->
      List.fold_left
        (fun acc (f : Traffic.flow) -> acc +. (f.Traffic.bandwidth /. capacity_mbps))
        0. flows
      /. float_of_int (List.length flows)

(* ------------------------------------------------------------------ *)
(* First-class workload specs                                          *)
(* ------------------------------------------------------------------ *)

type spec =
  | Burst of { packet_length : int; packets_per_flow : int }
  | Uniform_random of {
      packet_length : int;
      duration : int;
      rate : float;
      seed : int;
    }
  | Hotspot of {
      packet_length : int;
      duration : int;
      rate : float;
      factor : float;
      seed : int;
    }
  | Transpose of { packet_length : int; packets_per_flow : int; interval : int }
  | Bursty of {
      request_length : int;
      response_length : int;
      duration : int;
      exchanges : int;
      idle : int;
      seed : int;
    }
  | Bandwidth_proportional of {
      packet_length : int;
      duration : int;
      capacity_mbps : float;
      seed : int;
    }

let default_burst = Burst { packet_length = 8; packets_per_flow = 2 }

let default_uniform =
  Uniform_random { packet_length = 4; duration = 512; rate = 0.1; seed = 1 }

let default_hotspot =
  Hotspot { packet_length = 4; duration = 512; rate = 0.1; factor = 4.; seed = 1 }

let default_transpose =
  Transpose { packet_length = 8; packets_per_flow = 4; interval = 32 }

let default_bursty =
  Bursty
    {
      request_length = 1;
      response_length = 8;
      duration = 512;
      exchanges = 2;
      idle = 64;
      seed = 1;
    }

let default_bandwidth =
  Bandwidth_proportional
    { packet_length = 4; duration = 512; capacity_mbps = 1000.; seed = 1 }

let kind = function
  | Burst _ -> "burst"
  | Uniform_random _ -> "uniform"
  | Hotspot _ -> "hotspot"
  | Transpose _ -> "transpose"
  | Bursty _ -> "bursty"
  | Bandwidth_proportional _ -> "bandwidth"

let kinds = [ "burst"; "uniform"; "hotspot"; "transpose"; "bursty"; "bandwidth" ]

let of_kind = function
  | "burst" -> Some default_burst
  | "uniform" -> Some default_uniform
  | "hotspot" -> Some default_hotspot
  | "transpose" -> Some default_transpose
  | "bursty" -> Some default_bursty
  | "bandwidth" -> Some default_bandwidth
  | _ -> None

let describe = function
  | Burst { packet_length; packets_per_flow } ->
      Printf.sprintf "burst l=%d n=%d" packet_length packets_per_flow
  | Uniform_random { rate; _ } -> Printf.sprintf "uniform r=%.2f" rate
  | Hotspot { rate; factor; _ } ->
      Printf.sprintf "hotspot r=%.2f x%.1f" rate factor
  | Transpose { interval; _ } -> Printf.sprintf "transpose i=%d" interval
  | Bursty { exchanges; idle; _ } ->
      Printf.sprintf "bursty e=%d idle=%d" exchanges idle
  | Bandwidth_proportional { capacity_mbps; _ } ->
      Printf.sprintf "bandwidth c=%g" capacity_mbps

let injection_rate = function
  | Uniform_random { rate; _ } | Hotspot { rate; _ } -> Some rate
  | Burst _ | Transpose _ | Bursty _ | Bandwidth_proportional _ -> None

let at_rate spec rate =
  match spec with
  | Uniform_random u -> Some (Uniform_random { u with rate })
  | Hotspot h -> Some (Hotspot { h with rate })
  | Burst _ | Transpose _ | Bursty _ | Bandwidth_proportional _ -> None

let with_seed spec seed =
  match spec with
  | Uniform_random u -> Uniform_random { u with seed }
  | Hotspot h -> Hotspot { h with seed }
  | Bursty b -> Bursty { b with seed }
  | Bandwidth_proportional b -> Bandwidth_proportional { b with seed }
  | (Burst _ | Transpose _) as s -> s

let validate spec =
  let e cond msg acc = if cond then msg :: acc else acc in
  List.rev
    (match spec with
    | Burst { packet_length; packets_per_flow } ->
        [] |> e (packet_length < 1) "packet_length < 1"
        |> e (packets_per_flow < 1) "packets_per_flow < 1"
    | Uniform_random { packet_length; duration; rate; _ } ->
        [] |> e (packet_length < 1) "packet_length < 1"
        |> e (duration < 1) "duration < 1"
        |> e (rate <= 0.) "rate <= 0"
    | Hotspot { packet_length; duration; rate; factor; _ } ->
        [] |> e (packet_length < 1) "packet_length < 1"
        |> e (duration < 1) "duration < 1"
        |> e (rate <= 0.) "rate <= 0"
        |> e (factor < 1.) "hotspot factor < 1"
    | Transpose { packet_length; packets_per_flow; interval } ->
        [] |> e (packet_length < 1) "packet_length < 1"
        |> e (packets_per_flow < 1) "packets_per_flow < 1"
        |> e (interval < 1) "interval < 1"
    | Bursty { request_length; response_length; duration; exchanges; idle; _ }
      ->
        [] |> e (request_length < 1) "request_length < 1"
        |> e (response_length < 1) "response_length < 1"
        |> e (duration < 1) "duration < 1"
        |> e (exchanges < 1) "exchanges < 1"
        |> e (idle < 1) "idle < 1"
    | Bandwidth_proportional { packet_length; duration; capacity_mbps; _ } ->
        [] |> e (packet_length < 1) "packet_length < 1"
        |> e (duration < 1) "duration < 1"
        |> e (capacity_mbps <= 0.) "capacity <= 0")

let saturation_warning = function
  | Uniform_random { rate; _ } when rate > 1. ->
      Some
        (Printf.sprintf
           "injection rate %.2f flits/cycle/flow exceeds the 1.0 a single \
            injection port can sustain"
           rate)
  | Hotspot { rate; factor; _ } when rate *. factor > 1. ->
      Some
        (Printf.sprintf
           "hotspot flows inject at %.2f flits/cycle (rate x factor), beyond \
            the 1.0 a single injection port can sustain"
           (rate *. factor))
  | Burst _ | Uniform_random _ | Hotspot _ | Transpose _ | Bursty _
  | Bandwidth_proportional _ ->
      None

let check_valid spec =
  match validate spec with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "Workloads.%s: %s" (kind spec) (String.concat ", " errs))

(* Shared scaffolding: walk the routed flows in flow-id order, threading
   the generator state and the packet-id counter, exactly like
   [bandwidth_proportional] does. *)
let over_routed_flows net ~seed packets_for =
  let rec all rng next_id acc = function
    | [] -> List.concat (List.rev acc)
    | (f, route) :: rest ->
        let ps, rng, next_id = packets_for rng next_id f route in
        all rng next_id (ps :: acc) rest
  in
  let routed =
    List.filter_map
      (fun (f : Traffic.flow) ->
        match Network.route net f.Traffic.id with
        | [] -> None
        | route -> Some (f, route))
      (Traffic.flows (Network.traffic net))
  in
  all (Rng.make seed) 0 [] routed

(* About [rate * duration / packet_length] packets per flow at seeded
   uniform injection times; the fractional expectation becomes one extra
   packet with matching probability, so the mean rate is exact. *)
let uniform_packets_for ~packet_length ~duration ~rate rng next_id
    (f : Traffic.flow) route =
  let expected = rate *. float_of_int duration /. float_of_int packet_length in
  let base = int_of_float expected in
  let frac = expected -. float_of_int base in
  let draw, rng = Rng.float rng 1. in
  let n = base + (if draw < frac then 1 else 0) in
  let rec gen rng next_id j acc =
    if j = n then (List.rev acc, rng, next_id)
    else begin
      let at, rng = Rng.int rng duration in
      let p =
        Noc_sim.Packet.make ~id:next_id ~flow:f.Traffic.id ~route
          ~length:packet_length ~inject_at:at
      in
      gen rng (next_id + 1) (j + 1) (p :: acc)
    end
  in
  gen rng next_id 0 []

let uniform_random net ~packet_length ~duration ~rate ~seed =
  check_valid (Uniform_random { packet_length; duration; rate; seed });
  over_routed_flows net ~seed
    (uniform_packets_for ~packet_length ~duration ~rate)

(* The hotspot is the destination core with the highest total demanded
   bandwidth (lowest core id on ties): flows into it inject [factor]
   times faster than the background. *)
let hotspot_core net =
  let demand = Hashtbl.create 16 in
  List.iter
    (fun (f : Traffic.flow) ->
      if Network.route net f.Traffic.id <> [] then begin
        let k = Ids.Core.to_int f.Traffic.dst in
        Hashtbl.replace demand k
          (f.Traffic.bandwidth
          +. Option.value ~default:0. (Hashtbl.find_opt demand k))
      end)
    (Traffic.flows (Network.traffic net));
  Hashtbl.fold
    (fun core bw best ->
      match best with
      | Some (_, best_bw) when best_bw > bw -> best
      | Some (best_core, best_bw) when best_bw = bw && best_core < core -> best
      | _ -> Some (core, bw))
    demand None
  |> Option.map fst

let hotspot net ~packet_length ~duration ~rate ~factor ~seed =
  check_valid (Hotspot { packet_length; duration; rate; factor; seed });
  let hot = hotspot_core net in
  over_routed_flows net ~seed (fun rng next_id (f : Traffic.flow) route ->
      let rate =
        if Some (Ids.Core.to_int f.Traffic.dst) = hot then rate *. factor
        else rate
      in
      uniform_packets_for ~packet_length ~duration ~rate rng next_id f route)

(* Benchmark flows are fixed (src, dst) pairs, so the classic transpose
   permutation becomes a schedule: flows fire in destination-major
   (transposed) order, each phase-shifted within the interval, so
   packets converging on one destination arrive as a wave. *)
let transpose net ~packet_length ~packets_per_flow ~interval =
  check_valid (Transpose { packet_length; packets_per_flow; interval });
  let routed =
    List.filter_map
      (fun (f : Traffic.flow) ->
        match Network.route net f.Traffic.id with
        | [] -> None
        | route -> Some (f, route))
      (Traffic.flows (Network.traffic net))
  in
  let transposed =
    List.sort
      (fun ((a : Traffic.flow), _) ((b : Traffic.flow), _) ->
        match compare (Ids.Core.to_int a.Traffic.dst) (Ids.Core.to_int b.Traffic.dst) with
        | 0 -> compare (Ids.Core.to_int a.Traffic.src) (Ids.Core.to_int b.Traffic.src)
        | c -> c)
      routed
  in
  let n_flows = max 1 (List.length transposed) in
  let next_id = ref 0 in
  List.concat
    (List.mapi
       (fun r ((f : Traffic.flow), route) ->
         let offset = r * interval / n_flows in
         List.init packets_per_flow (fun j ->
             let id = !next_id in
             incr next_id;
             Noc_sim.Packet.make ~id ~flow:f.Traffic.id ~route
               ~length:packet_length
               ~inject_at:((j * interval) + offset)))
       transposed)

(* AXI-style request/response exchange on the forward route: a short
   command packet immediately followed by a long data packet, a few
   exchanges back to back, then a seeded idle gap.  The long packets in
   convoy are what makes this pattern deadlock-prone. *)
let bursty net ~request_length ~response_length ~duration ~exchanges ~idle
    ~seed =
  check_valid
    (Bursty { request_length; response_length; duration; exchanges; idle; seed });
  over_routed_flows net ~seed (fun rng next_id (f : Traffic.flow) route ->
      let make ~id ~length ~at =
        Noc_sim.Packet.make ~id ~flow:f.Traffic.id ~route ~length
          ~inject_at:(min (duration - 1) at)
      in
      let rec bursts rng next_id t acc =
        if t >= duration then (List.rev acc, rng, next_id)
        else begin
          let rec exchange rng next_id k t acc =
            if k = exchanges || t >= duration then (rng, next_id, t, acc)
            else begin
              let jitter, rng = Rng.int rng 4 in
              let req = make ~id:next_id ~length:request_length ~at:t in
              let resp =
                make ~id:(next_id + 1) ~length:response_length
                  ~at:(t + request_length + jitter)
              in
              exchange rng (next_id + 2) (k + 1)
                (t + request_length + jitter + response_length)
                (resp :: req :: acc)
            end
          in
          let rng, next_id, t, acc = exchange rng next_id 0 t acc in
          let gap, rng = Rng.int rng (max 1 idle) in
          bursts rng next_id (t + idle + gap) acc
        end
      in
      let start, rng = Rng.int rng (max 1 idle) in
      bursts rng next_id start [])

let generate net = function
  | Burst { packet_length; packets_per_flow } ->
      Noc_sim.Traffic_gen.burst net ~packet_length ~packets_per_flow
  | Uniform_random { packet_length; duration; rate; seed } ->
      uniform_random net ~packet_length ~duration ~rate ~seed
  | Hotspot { packet_length; duration; rate; factor; seed } ->
      hotspot net ~packet_length ~duration ~rate ~factor ~seed
  | Transpose { packet_length; packets_per_flow; interval } ->
      transpose net ~packet_length ~packets_per_flow ~interval
  | Bursty { request_length; response_length; duration; exchanges; idle; seed }
    ->
      bursty net ~request_length ~response_length ~duration ~exchanges ~idle
        ~seed
  | Bandwidth_proportional { packet_length; duration; capacity_mbps; seed } ->
      bandwidth_proportional net ~packet_length ~duration ~capacity_mbps ~seed
