open Noc_model

let bandwidth_proportional net ~packet_length ~duration ~capacity_mbps ~seed =
  if duration < 1 then invalid_arg "Workloads.bandwidth_proportional: duration < 1";
  if packet_length < 1 then
    invalid_arg "Workloads.bandwidth_proportional: packet_length < 1";
  if capacity_mbps <= 0. then
    invalid_arg "Workloads.bandwidth_proportional: capacity <= 0";
  (* Generator state and packet ids are threaded explicitly through the
     per-flow/per-packet recursion; nothing outlives the call. *)
  let packets_for rng next_id (f : Traffic.flow) =
    match Network.route net f.Traffic.id with
    | [] -> ([], rng, next_id)
    | route ->
        let flits =
          f.Traffic.bandwidth /. capacity_mbps *. float_of_int duration
        in
        let n = max 1 (int_of_float (flits /. float_of_int packet_length)) in
        let interval = max 1 (duration / n) in
        let rec gen rng next_id j acc =
          if j = n then (List.rev acc, rng, next_id)
          else begin
            let jitter, rng = Rng.int rng (max 1 (interval / 2)) in
            let p =
              Noc_sim.Packet.make ~id:next_id ~flow:f.Traffic.id ~route
                ~length:packet_length
                ~inject_at:(min (duration - 1) ((j * interval) + jitter))
            in
            gen rng (next_id + 1) (j + 1) (p :: acc)
          end
        in
        gen rng next_id 0 []
  in
  let rec all rng next_id acc = function
    | [] -> List.concat (List.rev acc)
    | f :: rest ->
        let ps, rng, next_id = packets_for rng next_id f in
        all rng next_id (ps :: acc) rest
  in
  all (Rng.make seed) 0 [] (Traffic.flows (Network.traffic net))

let offered_load net ~capacity_mbps =
  let flows =
    List.filter
      (fun (f : Traffic.flow) -> Network.route net f.Traffic.id <> [])
      (Traffic.flows (Network.traffic net))
  in
  match flows with
  | [] -> 0.
  | _ ->
      List.fold_left
        (fun acc (f : Traffic.flow) -> acc +. (f.Traffic.bandwidth /. capacity_mbps))
        0. flows
      /. float_of_int (List.length flows)
