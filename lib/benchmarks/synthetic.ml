open Noc_model

let core = Ids.Core.of_int

let uniform ~n_cores ~flows_per_core ~seed =
  if flows_per_core >= n_cores then
    invalid_arg "Synthetic.uniform: flows_per_core >= n_cores";
  let traffic = Traffic.create ~n_cores in
  let rec sources rng src =
    if src < n_cores then begin
      let dests, rng =
        Rng.sample_distinct rng n_cores ~exclude:src ~count:flows_per_core
      in
      let rng =
        List.fold_left
          (fun rng dst ->
            let quantum, rng = Rng.int rng 4 in
            let bandwidth = 50. *. float_of_int (1 + quantum) in
            ignore
              (Traffic.add_flow traffic ~src:(core src) ~dst:(core dst) ~bandwidth);
            rng)
          rng dests
      in
      sources rng (src + 1)
    end
  in
  sources (Rng.make seed) 0;
  traffic

let transpose ~n_cores ~bandwidth =
  let k = int_of_float (ceil (sqrt (float_of_int n_cores))) in
  let traffic = Traffic.create ~n_cores in
  for i = 0 to n_cores - 1 do
    let j = i * k mod n_cores in
    if i <> j then
      ignore (Traffic.add_flow traffic ~src:(core i) ~dst:(core j) ~bandwidth)
  done;
  traffic

let bit_complement ~n_cores ~bandwidth =
  let traffic = Traffic.create ~n_cores in
  for i = 0 to n_cores - 1 do
    let j = n_cores - 1 - i in
    if i <> j then
      ignore (Traffic.add_flow traffic ~src:(core i) ~dst:(core j) ~bandwidth)
  done;
  traffic

let hotspot ~n_cores ~n_hotspots ~background ~hotspot_bw =
  if n_hotspots < 1 || n_hotspots >= n_cores then
    invalid_arg "Synthetic.hotspot: n_hotspots out of range";
  let traffic = Traffic.create ~n_cores in
  let first_hotspot = n_cores - n_hotspots in
  for i = 0 to first_hotspot - 1 do
    let hs = first_hotspot + (i mod n_hotspots) in
    ignore (Traffic.add_flow traffic ~src:(core i) ~dst:(core hs) ~bandwidth:hotspot_bw);
    let next = (i + 1) mod first_hotspot in
    if next <> i && background > 0. then
      ignore
        (Traffic.add_flow traffic ~src:(core i) ~dst:(core next)
           ~bandwidth:background)
  done;
  traffic

let neighbour_ring ~n_cores ~bandwidth =
  let traffic = Traffic.create ~n_cores in
  for i = 0 to n_cores - 1 do
    let j = (i + 1) mod n_cores in
    if i <> j then
      ignore (Traffic.add_flow traffic ~src:(core i) ~dst:(core j) ~bandwidth)
  done;
  traffic

let spec_of ~name ~description ~n_cores build =
  { Spec.name; description; n_cores; build }
