(** Simulator workloads derived from the benchmark traffic.

    A benchmark fixes the flow set (every flow has a source, destination
    and installed route), so the classic synthetic patterns of the NoC
    literature — uniform random, hotspot, transpose, bursty
    request/response — become {e injection schedules} over those flows
    rather than destination choosers.  Every generator is seeded and
    deterministic: the same network and parameters give bit-identical
    packet lists on every platform, which is what lets simulation jobs
    be content-addressed.  {!Noc_sim.Traffic_gen.burst} remains the
    adversarial stress pattern these realistic schedules complement. *)

open Noc_model

val bandwidth_proportional :
  Network.t ->
  packet_length:int ->
  duration:int ->
  capacity_mbps:float ->
  seed:int ->
  Noc_sim.Packet.t list
(** Over [duration] cycles, flow [f] injects about
    [f.bandwidth / capacity * duration / packet_length] packets at
    jittered, roughly even intervals.  Flows with empty routes are
    skipped; every flow with positive demand gets at least one packet.
    Deterministic for a fixed seed.
    @raise Invalid_argument when [duration < 1], [packet_length < 1]
    or [capacity_mbps <= 0]. *)

val offered_load : Network.t -> capacity_mbps:float -> float
(** Mean per-flow injection rate in flits/cycle implied by the
    demands — a quick saturation sanity check before simulating. *)

val uniform_random :
  Network.t ->
  packet_length:int ->
  duration:int ->
  rate:float ->
  seed:int ->
  Noc_sim.Packet.t list
(** Every routed flow offers [rate] flits/cycle on average: about
    [rate * duration / packet_length] packets per flow at seeded
    uniform injection times in [0, duration) (the fractional
    expectation becomes one extra packet with matching probability).
    @raise Invalid_argument on non-positive parameters. *)

val hotspot :
  Network.t ->
  packet_length:int ->
  duration:int ->
  rate:float ->
  factor:float ->
  seed:int ->
  Noc_sim.Packet.t list
(** {!uniform_random}, except flows into the hotspot — the destination
    core with the highest total demanded bandwidth (lowest id on ties)
    — inject [factor] times faster than the background [rate].
    @raise Invalid_argument when a parameter is non-positive or
    [factor < 1]. *)

val transpose :
  Network.t ->
  packet_length:int ->
  packets_per_flow:int ->
  interval:int ->
  Noc_sim.Packet.t list
(** Deterministic transpose schedule: flows fire in destination-major
    (transposed) order, each phase-shifted within [interval], so
    packets converging on one destination arrive as a wave — the
    schedule analogue of the matrix-transpose permutation pattern.
    @raise Invalid_argument on non-positive parameters. *)

val bursty :
  Network.t ->
  request_length:int ->
  response_length:int ->
  duration:int ->
  exchanges:int ->
  idle:int ->
  seed:int ->
  Noc_sim.Packet.t list
(** AXI-style request/response traffic on the forward route: bursts of
    [exchanges] short-command/long-data packet pairs back to back,
    separated by seeded idle gaps of [idle..2*idle) cycles.  The
    long-packet convoys make this the most deadlock-prone of the
    realistic schedules.
    @raise Invalid_argument on non-positive parameters. *)

(** {1 First-class workload specs}

    The spec type names a generator together with its parameters, so
    workloads can be validated, serialized into jobs, and swept by
    campaigns without threading six argument lists around. *)

type spec =
  | Burst of { packet_length : int; packets_per_flow : int }
  | Uniform_random of {
      packet_length : int;
      duration : int;
      rate : float;
      seed : int;
    }
  | Hotspot of {
      packet_length : int;
      duration : int;
      rate : float;
      factor : float;
      seed : int;
    }
  | Transpose of { packet_length : int; packets_per_flow : int; interval : int }
  | Bursty of {
      request_length : int;
      response_length : int;
      duration : int;
      exchanges : int;
      idle : int;
      seed : int;
    }
  | Bandwidth_proportional of {
      packet_length : int;
      duration : int;
      capacity_mbps : float;
      seed : int;
    }

val default_burst : spec
val default_uniform : spec
val default_hotspot : spec
val default_transpose : spec
val default_bursty : spec
val default_bandwidth : spec

val kind : spec -> string
(** Stable one-word name: [burst], [uniform], [hotspot], [transpose],
    [bursty] or [bandwidth] — the tag used in job JSON and reports. *)

val kinds : string list
(** Every kind name, catalog order. *)

val of_kind : string -> spec option
(** The default spec of a kind name; [None] on an unknown kind. *)

val describe : spec -> string
(** Short human label with the distinguishing parameters, e.g.
    ["uniform r=0.10"]. *)

val injection_rate : spec -> float option
(** The background injection rate of rate-parameterized kinds
    ([uniform], [hotspot]); [None] otherwise. *)

val at_rate : spec -> float -> spec option
(** The spec re-parameterized at the given injection rate, for kinds
    with one; [None] otherwise — campaigns use this to sweep load. *)

val with_seed : spec -> int -> spec
(** Replace the seed of seeded kinds; identity on the rest. *)

val validate : spec -> string list
(** Static parameter errors, empty when well-formed.  The generators
    raise [Invalid_argument] on exactly these conditions. *)

val saturation_warning : spec -> string option
(** A warning when the spec offers more than one flit per cycle per
    flow — the simulation will be injection-limited, not a deadlock
    signal. *)

val generate : Network.t -> spec -> Noc_sim.Packet.t list
(** Run the named generator.
    @raise Invalid_argument when {!validate} is non-empty. *)
