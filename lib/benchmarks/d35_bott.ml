(* D35_bott: 35 cores with a shared-memory bottleneck — 32 processing
   cores all stream to 3 memory controllers and get responses back,
   plus a nearest-neighbour processing pipeline and a few seeded
   cross-traffic flows. *)

open Noc_model

let n_cores = 35
let n_processors = 32
let memories = [| 32; 33; 34 |]

let build () =
  let traffic = Traffic.create ~n_cores in
  let add src dst bandwidth =
    ignore
      (Traffic.add_flow traffic ~src:(Ids.Core.of_int src)
         ~dst:(Ids.Core.of_int dst) ~bandwidth)
  in
  for p = 0 to n_processors - 1 do
    let mem = memories.(p mod Array.length memories) in
    add p mem 150.;
    (* write path: the bottleneck *)
    add mem p 75. (* read responses *)
  done;
  (* Neighbour pipeline across the processing cores. *)
  for p = 0 to n_processors - 2 do
    add p (p + 1) 40.
  done;
  (* A handful of long-range control flows.  The generator state is
     threaded explicitly; note the bandwidth draw only happens on the
     src <> dst branch, matching the historical stream exactly. *)
  let rec cross rng remaining =
    if remaining > 0 then begin
      let src, rng = Rng.int rng n_processors in
      let dst, rng = Rng.int rng n_processors in
      let rng =
        if src <> dst then begin
          let quantum, rng = Rng.int rng 4 in
          add src dst (10. +. (float_of_int quantum *. 10.));
          rng
        end
        else rng
      in
      cross rng (remaining - 1)
    end
  in
  cross (Rng.make 3535) 12;
  traffic

let spec =
  {
    Spec.name = "D35_bott";
    description =
      "35 cores: 32 processors hammering 3 shared memory controllers, with a \
       neighbour pipeline and sparse cross traffic";
    n_cores;
    build;
  }
