(* The generator state is a plain immutable value: every operation
   returns the next state instead of mutating in place.  That makes the
   module trivially domain-safe — two domains replaying the same seed
   can never race, because there is nothing to race on — which matters
   now that benchmark builds run inside the batch service's domain
   pool.  Callers thread the state explicitly. *)

type t = int64

let make seed = Int64.of_int seed

(* SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, and excellent
   stream quality for this purpose. *)
let next state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (Int64.logxor z (Int64.shift_right_logical z 31), state)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let raw, t = next t in
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit
     native int. *)
  let v = Int64.to_int (Int64.shift_right_logical raw 2) in
  (v mod bound, t)

let float t x =
  let raw, t = next t in
  let v = Int64.to_float (Int64.shift_right_logical raw 11) in
  (x *. v /. 9007199254740992.0 (* 2^53 *), t)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  let i, t = int t (Array.length arr) in
  (arr.(i), t)

let sample_distinct t bound ~exclude ~count =
  let available = if exclude >= 0 && exclude < bound then bound - 1 else bound in
  if count > available then invalid_arg "Rng.sample_distinct: not enough values";
  let chosen = Hashtbl.create count in
  let rec draw t acc remaining =
    if remaining = 0 then (List.rev acc, t)
    else begin
      let v, t = int t bound in
      if v = exclude || Hashtbl.mem chosen v then draw t acc remaining
      else begin
        Hashtbl.replace chosen v ();
        draw t (v :: acc) (remaining - 1)
      end
    end
  in
  draw t [] count
