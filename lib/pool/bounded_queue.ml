exception Closed

type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
  {
    items = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
  }

let push t x =
  Mutex.lock t.mutex;
  let rec wait () =
    if t.closed then begin
      Mutex.unlock t.mutex;
      raise Closed
    end
    else if Queue.length t.items >= t.capacity then begin
      Condition.wait t.not_full t.mutex;
      wait ()
    end
  in
  wait ();
  Queue.push x t.items;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

let try_push t x =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    raise Closed
  end
  else if Queue.length t.items >= t.capacity then begin
    Mutex.unlock t.mutex;
    false
  end
  else begin
    Queue.push x t.items;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex;
    true
  end

let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.items) then begin
      let x = Queue.pop t.items in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      Some x
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.not_empty t.mutex;
      wait ()
    end
  in
  wait ()

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  (* Wake every waiter: blocked producers must raise [Closed], blocked
     consumers must drain and then observe the close. *)
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.items in
  Mutex.unlock t.mutex;
  n

let is_closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c
