(** A bounded, blocking, multi-producer multi-consumer FIFO — the work
    queue of {!Pool}.  Producers block when the queue is at capacity
    (natural backpressure on job submission); consumers block when it
    is empty.  [close] wakes everyone: blocked pushes raise {!Closed},
    blocked pops drain the remaining items and then return [None]. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Blocks while the queue is full.
    @raise Closed if the queue is (or becomes) closed. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking {!push}: [false] instead of waiting when the queue is
    at capacity — the primitive behind the server's typed [overloaded]
    response.  @raise Closed if the queue is closed. *)

val pop : 'a t -> 'a option
(** Blocks while the queue is empty and open; [None] once the queue is
    closed and drained. *)

val close : 'a t -> unit
(** Idempotent.  Already-queued items remain poppable. *)

val length : 'a t -> int
(** Instantaneous queue depth (racy by nature; for telemetry). *)

val is_closed : 'a t -> bool
