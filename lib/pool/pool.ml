type task = unit -> unit

type t = {
  queue : task Bounded_queue.t;
  workers : unit Domain.t array;
  mutable shut_down : bool;
}

let default_queue_capacity = 256

(* Queue wait — push to pop — is the pool's saturation signal; it is
   measured per task (the histogram is always on, one atomic per
   sample) rather than per pool so traces from nested pools merge. *)
let queue_wait_ms = Noc_obs.Metrics.histogram "noc_pool_queue_wait_ms"
let tasks_total = Noc_obs.Metrics.counter "noc_pool_tasks_total"

(* Worker-utilization gauges (lazy: they only appear once a pool
   exists, keeping pool-free traces clean).  Counts aggregate across
   live pools; busy/total is the utilization `noc_tool top` shows. *)
let workers_gauge = lazy (Noc_obs.Metrics.gauge "noc_pool_workers")
let busy_gauge = lazy (Noc_obs.Metrics.gauge "noc_pool_busy_workers")
let total_workers = Atomic.make 0
let busy_workers = Atomic.make 0

let adjust_workers delta =
  let v = Atomic.fetch_and_add total_workers delta + delta in
  Noc_obs.Metrics.set_gauge (Lazy.force workers_gauge) (float_of_int v)

let adjust_busy delta =
  let v = Atomic.fetch_and_add busy_workers delta + delta in
  Noc_obs.Metrics.set_gauge (Lazy.force busy_gauge) (float_of_int v)

let worker_loop queue () =
  (* One span per worker domain, covering its whole lifetime; task
     spans nest under it on the same domain's buffer. *)
  Noc_obs.Trace.with_span "pool.worker" @@ fun _sp ->
  let rec loop () =
    match Bounded_queue.pop queue with
    | None -> ()
    | Some task ->
        task ();
        loop ()
  in
  loop ()

let create ?(queue_capacity = default_queue_capacity) ~domains () =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let queue = Bounded_queue.create ~capacity:queue_capacity in
  let workers = Array.init domains (fun _ -> Domain.spawn (worker_loop queue)) in
  adjust_workers domains;
  { queue; workers; shut_down = false }

let domains t = Array.length t.workers

let queue_depth t = Bounded_queue.length t.queue

let shutdown t =
  if not t.shut_down then begin
    t.shut_down <- true;
    Bounded_queue.close t.queue;
    Array.iter Domain.join t.workers;
    adjust_workers (-Array.length t.workers)
  end

let with_pool ?queue_capacity ~domains f =
  let t = create ?queue_capacity ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let instrumented task =
  let submitted_ns = Noc_obs.Clock.now_ns () in
  fun () ->
    let wait_ms =
      Noc_obs.Clock.ms_between ~start_ns:submitted_ns
        ~stop_ns:(Noc_obs.Clock.now_ns ())
    in
    Noc_obs.Metrics.observe queue_wait_ms wait_ms;
    Noc_obs.Metrics.incr tasks_total;
    adjust_busy 1;
    Fun.protect
      ~finally:(fun () -> adjust_busy (-1))
      (fun () ->
        Noc_obs.Trace.with_span "pool.task"
          ~attrs:[ ("queue_wait_ms", Noc_obs.Trace.Float wait_ms) ]
          (fun _sp -> task ()))

let submit t task =
  if t.shut_down then invalid_arg "Pool.submit: pool is shut down";
  Bounded_queue.push t.queue (instrumented task)

let try_submit t task =
  if t.shut_down then invalid_arg "Pool.try_submit: pool is shut down";
  Bounded_queue.try_push t.queue (instrumented task)

(* Order-preserving parallel map.  Tasks store into a slot array; the
   caller blocks until every slot is filled, then re-raises the first
   exception (by item index) if any task failed.  Submission happens on
   the calling thread, so a full queue applies backpressure here rather
   than growing without bound. *)
let map t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let mutex = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    for i = 0 to n - 1 do
      submit t (fun () ->
          let r = try Ok (f items.(i)) with e -> Error e in
          Mutex.lock mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.signal all_done;
          Mutex.unlock mutex)
    done;
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait all_done mutex
    done;
    Mutex.unlock mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

let run ?queue_capacity ~domains f xs =
  if domains <= 1 then List.map f xs
  else with_pool ?queue_capacity ~domains (fun t -> map t f xs)
