(** A fixed-size pool of OCaml 5 [Domain] workers fed from a bounded
    work queue.

    The pool is deliberately simple: workers pull thunks off the queue
    and run them to completion; submission blocks when the queue is at
    capacity (backpressure); {!map} preserves input order regardless of
    completion order, so pool-backed evaluation is a drop-in,
    deterministically-ordered replacement for [List.map] whenever the
    mapped function itself is deterministic and shares no mutable
    state across items. *)

type t

val create : ?queue_capacity:int -> domains:int -> unit -> t
(** Spawns [domains] worker domains ([queue_capacity] defaults to
    [256]).  @raise Invalid_argument when [domains < 1]. *)

val shutdown : t -> unit
(** Closes the queue, lets workers drain it, and joins them.
    Idempotent. *)

val with_pool : ?queue_capacity:int -> domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and always shuts
    it down, even when [f] raises. *)

val submit : t -> (unit -> unit) -> unit
(** Queue a thunk; blocks while the queue is full.
    @raise Invalid_argument after {!shutdown}. *)

val try_submit : t -> (unit -> unit) -> bool
(** Non-blocking {!submit}: [false] instead of waiting when the queue
    is at capacity, so a caller holding a client connection can shed
    load (reply [overloaded]) rather than stall every other client.
    @raise Invalid_argument after {!shutdown}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel map, results in input order.  If any application raised,
    the exception of the smallest-index failing item is re-raised
    after all items finished. *)

val run : ?queue_capacity:int -> domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [List.map] when [domains <= 1] (no domain is
    spawned), otherwise {!with_pool} + {!map}. *)

val domains : t -> int
(** Number of worker domains. *)

val queue_depth : t -> int
(** Instantaneous queue depth (racy; for telemetry). *)
