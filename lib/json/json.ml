(* Minimal JSON: the value type shared by job files, telemetry lines
   and bench reports, with a hand-written parser/printer.  No JSON
   library ships in the toolchain here, so the subset needed (objects,
   arrays, strings, numbers, booleans, null) is implemented directly.
   Emission is canonical: field order is whatever the caller supplies,
   no insignificant whitespace, floats printed with %.17g so that
   parse ∘ print is the identity on every float. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Integers print without a fractional part: stable and readable. *)
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec print_into b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s -> escape_into b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          print_into b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_into b k;
          Buffer.add_char b ':';
          print_into b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  print_into b v;
  Buffer.contents b

(* Indented variant for files a human reads (jobs.json examples,
   bench reports). *)
let to_string_pretty v =
  let b = Buffer.create 256 in
  let pad depth = Buffer.add_string b (String.make (2 * depth) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Num _ | Str _) as v -> print_into b v
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            go (depth + 1) v)
          items;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (depth + 1);
            escape_into b k;
            Buffer.add_string b ": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char b '\n';
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 'r' -> Buffer.add_char b '\r'
               | 't' -> Buffer.add_char b '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape"
                   else begin
                     let hex = String.sub s (!pos + 1) 4 in
                     (match int_of_string_opt ("0x" ^ hex) with
                     | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
                     | Some _ ->
                         (* Non-ASCII escapes are not produced by this
                            module; keep them lossless enough. *)
                         Buffer.add_string b ("\\u" ^ hex)
                     | None -> fail "bad \\u escape");
                     pos := !pos + 4
                   end
               | c -> Buffer.add_char b c);
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected a value"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_string s =
  match parse s with v -> Ok v | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let field name v =
  match member name v with
  | Some x -> x
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" name))

let to_str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected a string")

let to_num = function
  | Num f -> f
  | _ -> raise (Parse_error "expected a number")

let to_int v =
  let f = to_num v in
  if Float.is_integer f then int_of_float f
  else raise (Parse_error "expected an integer")

let to_bool = function
  | Bool b -> b
  | _ -> raise (Parse_error "expected a boolean")

let to_list = function
  | Arr items -> items
  | _ -> raise (Parse_error "expected an array")
