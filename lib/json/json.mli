(** Minimal JSON values — the lingua franca of the batch service: job
    files ([jobs.json]), telemetry lines (JSONL) and bench reports all
    speak it.  Hand-written printer and parser (no JSON dependency in
    the toolchain); [of_string] inverts both {!to_string} and
    {!to_string_pretty}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact canonical form: no insignificant whitespace, caller's field
    order, floats via [%.17g] (lossless round-trip), integral floats
    without a fractional part.  One value = one line, so it is directly
    usable as a JSONL record. *)

val to_string_pretty : t -> string
(** Two-space indented form for files meant to be read or committed. *)

val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on absent field or non-object. *)

val field : string -> t -> t
(** @raise Parse_error on absent field or non-object. *)

val to_str : t -> string
(** @raise Parse_error unless [Str]. *)

val to_num : t -> float
(** @raise Parse_error unless [Num]. *)

val to_int : t -> int
(** @raise Parse_error unless an integral [Num]. *)

val to_bool : t -> bool
(** @raise Parse_error unless [Bool]. *)

val to_list : t -> t list
(** @raise Parse_error unless [Arr]. *)
