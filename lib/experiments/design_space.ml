type point = {
  n_switches : int;
  max_degree : int;
  mapper : string;
  vcs_added : int;
  power_mw : float;
  area_mm2 : float;
  avg_hops : float;
  pareto : bool;
}

let dominates a b =
  a.power_mw <= b.power_mw && a.area_mm2 <= b.area_mm2 && a.avg_hops <= b.avg_hops
  && (a.power_mw < b.power_mw || a.area_mm2 < b.area_mm2 || a.avg_hops < b.avg_hops)

let mark_pareto points =
  List.map
    (fun p -> { p with pareto = not (List.exists (fun q -> dominates q p) points) })
    points

let pareto_front points = List.filter (fun p -> p.pareto) (mark_pareto points)

let explore ?(domains = 1) ?(switch_counts = [ 8; 11; 14; 17; 20 ])
    ?(degrees = [ 3; 4; 5 ]) (spec : Noc_benchmarks.Spec.t) =
  let counts =
    List.filter (fun n -> n <= spec.Noc_benchmarks.Spec.n_cores) switch_counts
  in
  let evaluate n_switches max_degree (mapper_name, mapper) =
    let traffic = spec.Noc_benchmarks.Spec.build () in
    let options =
      {
        Noc_synth.Custom.default_options with
        Noc_synth.Custom.max_out_degree = max_degree;
        max_in_degree = max_degree;
        mapper;
      }
    in
    let net = Noc_synth.Custom.synthesize_exn ~options traffic ~n_switches in
    let report = Noc_deadlock.Removal.run net in
    let power = Noc_power.Report.of_network net in
    let metrics = Noc_model.Metrics.of_network net in
    {
      n_switches;
      max_degree;
      mapper = mapper_name;
      vcs_added = report.Noc_deadlock.Removal.vcs_added;
      power_mw = power.Noc_power.Report.total_power_mw;
      area_mm2 = power.Noc_power.Report.total_area_mm2;
      avg_hops = metrics.Noc_model.Metrics.avg_hops;
      pareto = false;
    }
  in
  (* The grid is materialized up front and each cell evaluated
     independently (fresh traffic, private network), so cells can run
     on pool workers; order preservation keeps the point list — and
     therefore the Pareto marking — identical for any [domains]. *)
  let grid =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun d ->
            List.map
              (fun mapper -> (n, d, mapper))
              [
                ("greedy", Noc_synth.Custom.Greedy_affinity);
                ("min-cut", Noc_synth.Custom.Min_cut);
              ])
          degrees)
      counts
  in
  let points =
    Noc_pool.Pool.run ~domains (fun (n, d, mapper) -> evaluate n d mapper) grid
  in
  mark_pareto points

let pp ppf points =
  let table =
    Series.create
      ~header:
        [ "switches"; "degree"; "mapper"; "VCs"; "power mW"; "area mm2";
          "avg hops"; "pareto" ]
  in
  List.iter
    (fun p ->
      Series.add_row table
        [
          string_of_int p.n_switches;
          string_of_int p.max_degree;
          p.mapper;
          string_of_int p.vcs_added;
          Printf.sprintf "%.1f" p.power_mw;
          Printf.sprintf "%.3f" p.area_mm2;
          Printf.sprintf "%.2f" p.avg_hops;
          (if p.pareto then "*" else "");
        ])
    points;
  Series.pp ppf table
