open Noc_model

type variant = {
  vcs_added : int;
  total_vcs : int;
  power_mw : float;
  area_mm2 : float;
}

type point = {
  benchmark : string;
  n_switches : int;
  n_flows : int;
  initially_deadlock_free : bool;
  baseline : variant;
  removal : variant;
  ordering : variant;
  ordering_hop : variant;
  removal_iterations : int;
}

let variant_of net ~vcs_added =
  let report = Noc_power.Report.of_network net in
  {
    vcs_added;
    total_vcs = Topology.total_vcs (Network.topology net);
    power_mw = report.Noc_power.Report.total_power_mw;
    area_mm2 = report.Noc_power.Report.total_area_mm2;
  }

let evaluate (spec : Noc_benchmarks.Spec.t) ~n_switches =
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let base = Noc_synth.Custom.synthesize_exn traffic ~n_switches in
  let initially_deadlock_free = Noc_deadlock.Removal.is_deadlock_free base in
  let removal_net = Network.copy base in
  let removal_report = Noc_deadlock.Removal.run removal_net in
  if not removal_report.Noc_deadlock.Removal.deadlock_free then
    failwith
      (Printf.sprintf "Sweep.evaluate: removal hit iteration cap on %s@%d"
         spec.Noc_benchmarks.Spec.name n_switches);
  let ordering_net = Network.copy base in
  let ordering_report = Noc_deadlock.Resource_ordering.apply ordering_net in
  let hop_net = Network.copy base in
  let hop_report =
    Noc_deadlock.Resource_ordering.apply
      ~strategy:Noc_deadlock.Resource_ordering.Hop_index hop_net
  in
  {
    benchmark = spec.Noc_benchmarks.Spec.name;
    n_switches;
    n_flows = Traffic.n_flows traffic;
    initially_deadlock_free;
    baseline = variant_of base ~vcs_added:0;
    removal =
      variant_of removal_net
        ~vcs_added:removal_report.Noc_deadlock.Removal.vcs_added;
    ordering =
      variant_of ordering_net
        ~vcs_added:ordering_report.Noc_deadlock.Resource_ordering.vcs_added;
    ordering_hop =
      variant_of hop_net
        ~vcs_added:hop_report.Noc_deadlock.Resource_ordering.vcs_added;
    removal_iterations = removal_report.Noc_deadlock.Removal.iterations;
  }

let evaluate_many ?(domains = 1) points =
  (* [evaluate] builds its traffic and network privately and touches no
     shared state, so points can be farmed out to pool workers; the
     pool preserves input order, keeping the result identical to the
     sequential List.map for any [domains]. *)
  Noc_pool.Pool.run ~domains
    (fun (spec, n_switches) -> evaluate spec ~n_switches)
    points

let pp_point ppf p =
  Format.fprintf ppf
    "%s @ %d switches: removal +%d VC (%d cycles broken)%s, ordering +%d VC, \
     hop-index +%d VC; power %.2f / %.2f / %.2f mW"
    p.benchmark p.n_switches p.removal.vcs_added p.removal_iterations
    (if p.initially_deadlock_free then " [already acyclic]" else "")
    p.ordering.vcs_added p.ordering_hop.vcs_added p.removal.power_mw
    p.ordering.power_mw p.baseline.power_mw
