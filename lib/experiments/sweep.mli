(** One evaluation point: a benchmark synthesized at a given switch
    count, compared across deadlock-handling methods.  This is the
    shared machinery behind Figures 8, 9 and 10. *)

type variant = {
  vcs_added : int;
  total_vcs : int;
  power_mw : float;
  area_mm2 : float;
}

type point = {
  benchmark : string;
  n_switches : int;
  n_flows : int;
  initially_deadlock_free : bool;
      (** Whether the synthesized design's CDG was already acyclic —
          the paper's "overhead is zero for most topologies"
          observation on D26_media. *)
  baseline : variant;  (** No deadlock handling at all. *)
  removal : variant;  (** The paper's algorithm. *)
  ordering : variant;  (** Greedy resource ordering. *)
  ordering_hop : variant;  (** Hop-index resource ordering. *)
  removal_iterations : int;
}

val evaluate : Noc_benchmarks.Spec.t -> n_switches:int -> point
(** Synthesizes the benchmark's topology at [n_switches], then applies
    each method to an independent copy and evaluates power/area.
    @raise Failure if synthesis cannot route the traffic (not observed
    on the shipped benchmarks). *)

val evaluate_many :
  ?domains:int -> (Noc_benchmarks.Spec.t * int) list -> point list
(** {!evaluate} over a list of points, farmed out to a
    {!Noc_pool.Pool} of [domains] workers (default [1] = sequential,
    no domain spawned).  Results are in input order and bit-identical
    to the sequential run for any [domains]. *)

val pp_point : Format.formatter -> point -> unit
