(** Behavioural cross-check (extension X1 of DESIGN.md): drive the
    wormhole simulator on a design before and after deadlock removal.
    The static claim — "a cyclic CDG can deadlock; an acyclic one
    cannot" — becomes observable: the ring example reproducibly
    deadlocks under burst traffic, and completes after the algorithm
    has added its one VC. *)

open Noc_model

type result = {
  label : string;
  cdg_cyclic : bool;
  outcome : Noc_sim.Engine.outcome;
}

val check :
  ?packet_length:int ->
  ?packets_per_flow:int ->
  ?workload:Noc_benchmarks.Workloads.spec ->
  label:string ->
  Network.t ->
  result
(** Drive [workload] on the network as-is.  The default is the
    historical burst pattern (8-flit packets, 2 per flow, shaped by
    [packet_length]/[packets_per_flow]); passing [workload] overrides
    both of those arguments. *)

val ring_demo : unit -> result * result
(** The paper's ring, before (deadlocks) and after (completes)
    removal. *)

val benchmark_demo :
  ?name:string -> ?n_switches:int -> unit -> result * result
(** Same experiment on a synthesized benchmark design (default D36_8
    at 14 switches). *)

val pp_result : Format.formatter -> result -> unit
