(** Design-space exploration: sweep switch count, degree budget and
    mapper for one benchmark, apply deadlock removal to every design,
    and report the Pareto frontier over (power, area, average hops).
    The kind of table an SoC architect would actually act on. *)

type point = {
  n_switches : int;
  max_degree : int;
  mapper : string;  (** ["greedy"] or ["min-cut"]. *)
  vcs_added : int;
  power_mw : float;
  area_mm2 : float;
  avg_hops : float;
  pareto : bool;  (** Not dominated on (power, area, avg_hops). *)
}

val explore :
  ?domains:int ->
  ?switch_counts:int list ->
  ?degrees:int list ->
  Noc_benchmarks.Spec.t ->
  point list
(** Every combination, deadlock-removed and priced.  Defaults:
    switch counts [[8; 11; 14; 17; 20]] (clipped to the core count),
    degrees [[3; 4; 5]].  Deterministic: grid cells are independent,
    so [domains > 1] evaluates them on a {!Noc_pool.Pool} without
    changing the result ([1], the default, stays sequential). *)

val pareto_front : point list -> point list
(** The non-dominated subset (minimizing all three objectives). *)

val pp : Format.formatter -> point list -> unit
