type result = {
  label : string;
  cdg_cyclic : bool;
  outcome : Noc_sim.Engine.outcome;
}

let check ?(packet_length = 8) ?(packets_per_flow = 2) ?workload ~label net =
  let workload =
    match workload with
    | Some w -> w
    | None -> Noc_benchmarks.Workloads.Burst { packet_length; packets_per_flow }
  in
  let packets = Noc_benchmarks.Workloads.generate net workload in
  {
    label;
    cdg_cyclic = not (Noc_deadlock.Removal.is_deadlock_free net);
    outcome = Noc_sim.Engine.run net packets;
  }

let ring_demo () =
  let t = Ring_example.build () in
  let before = check ~label:"ring, as designed" t.Ring_example.net in
  ignore (Noc_deadlock.Removal.run t.Ring_example.net);
  let after = check ~label:"ring, after deadlock removal" t.Ring_example.net in
  (before, after)

let benchmark_demo ?(name = "D36_8") ?(n_switches = 14) () =
  let spec =
    match Noc_benchmarks.Registry.find name with
    | Some s -> s
    | None -> invalid_arg ("Sim_check: unknown benchmark " ^ name)
  in
  let traffic = spec.Noc_benchmarks.Spec.build () in
  let net = Noc_synth.Custom.synthesize_exn traffic ~n_switches in
  let before =
    check ~label:(Printf.sprintf "%s@%d, as synthesized" name n_switches) net
  in
  ignore (Noc_deadlock.Removal.run net);
  let after =
    check ~label:(Printf.sprintf "%s@%d, after deadlock removal" name n_switches) net
  in
  (before, after)

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%s (CDG %s):@,  %a@]" r.label
    (if r.cdg_cyclic then "cyclic" else "acyclic")
    Noc_sim.Engine.pp_outcome r.outcome
