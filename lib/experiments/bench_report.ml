(* Machine-readable removal-benchmark reports (BENCH_removal.json).

   The CI gate diffs a freshly measured report against the committed
   baseline.  Absolute wall times are machine-dependent, so the gate
   only compares quantities that are not:

   - [iterations] / [vcs_added] are deterministic outputs of the
     algorithm and must match the baseline exactly;
   - the per-entry speedup (rebuild over incremental, both arms
     measured on the same machine in the same process) is a ratio, so
     a regression of the incremental hot path shows up on any host.

   No JSON library ships in the toolchain here, so the tiny subset
   needed (objects, arrays, strings, numbers) is emitted and parsed by
   hand. *)

type entry = {
  benchmark : string;
  n_switches : int;
  iterations : int;
  vcs_added : int;
  incremental_ms : float;
  rebuild_ms : float;
  phases : (string * float) list;
      (* Per-span-name wall ms from one traced run of the incremental
         arm; [] when the producing harness did not trace (older
         reports).  Attribution only — the gate never compares it. *)
}

let schema = "bench-removal/1"

let speedup e =
  if e.incremental_ms > 0. then e.rebuild_ms /. e.incremental_ms else 0.

let aggregate_speedup entries =
  let inc = List.fold_left (fun a e -> a +. e.incremental_ms) 0. entries in
  let reb = List.fold_left (fun a e -> a +. e.rebuild_ms) 0. entries in
  if inc > 0. then reb /. inc else 0.

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\n  \"schema\": \"%s\",\n" schema);
  Buffer.add_string b "  \"entries\": [\n";
  List.iteri
    (fun i e ->
      let phases =
        if e.phases = [] then ""
        else
          Printf.sprintf ", \"phases\": {%s}"
            (String.concat ", "
               (List.map
                  (fun (name, ms) ->
                    Printf.sprintf "\"%s\": %.6f" (escape name) ms)
                  e.phases))
      in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"benchmark\": \"%s\", \"n_switches\": %d, \"iterations\": \
            %d, \"vcs_added\": %d, \"incremental_ms\": %.6f, \"rebuild_ms\": \
            %.6f%s}%s\n"
           (escape e.benchmark) e.n_switches e.iterations e.vcs_added
           e.incremental_ms e.rebuild_ms phases
           (if i = List.length entries - 1 then "" else ",")))
    entries;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (minimal JSON subset)                                       *)
(* ------------------------------------------------------------------ *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | c -> Buffer.add_char b c);
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Parse_error (Printf.sprintf "expected object with field %S" name))

let as_num = function
  | Num f -> f
  | _ -> raise (Parse_error "expected number")

let as_str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let of_json text =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | root -> (
      match field "schema" root with
      | exception Parse_error msg -> Error msg
      | s when as_str s <> schema ->
          Error (Printf.sprintf "unsupported schema %S (want %S)" (as_str s) schema)
      | _ -> (
          match field "entries" root with
          | exception Parse_error msg -> Error msg
          | Arr items -> (
              try
                Ok
                  (List.map
                     (fun item ->
                       {
                         benchmark = as_str (field "benchmark" item);
                         n_switches =
                           int_of_float (as_num (field "n_switches" item));
                         iterations =
                           int_of_float (as_num (field "iterations" item));
                         vcs_added =
                           int_of_float (as_num (field "vcs_added" item));
                         incremental_ms = as_num (field "incremental_ms" item);
                         rebuild_ms = as_num (field "rebuild_ms" item);
                         (* Optional: absent in pre-tracing reports. *)
                         phases =
                           (match item with
                           | Obj fields -> (
                               match List.assoc_opt "phases" fields with
                               | Some (Obj ps) ->
                                   List.map (fun (k, v) -> (k, as_num v)) ps
                               | Some _ ->
                                   raise
                                     (Parse_error "\"phases\" is not an object")
                               | None -> [])
                           | _ -> []);
                       })
                     items)
              with Parse_error msg -> Error msg)
          | _ -> Error "\"entries\" is not an array"))

(* ------------------------------------------------------------------ *)
(* Baseline comparison (the CI gate)                                   *)
(* ------------------------------------------------------------------ *)

let compare_to_baseline ?(ratio_tolerance = 0.25) ?(min_aggregate_speedup = 4.0)
    ~baseline current =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let key e = (e.benchmark, e.n_switches) in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> key c = key b) current with
      | None ->
          err "%s@%d: entry missing from current report" b.benchmark
            b.n_switches
      | Some c ->
          if c.iterations <> b.iterations then
            err "%s@%d: iterations changed %d -> %d (trajectory drift)"
              b.benchmark b.n_switches b.iterations c.iterations;
          if c.vcs_added <> b.vcs_added then
            err "%s@%d: vcs_added changed %d -> %d (trajectory drift)"
              b.benchmark b.n_switches b.vcs_added c.vcs_added;
          (* Machine-independent perf gate: the incremental/rebuild
             ratio must not regress by more than [ratio_tolerance]
             relative to the baseline ratio.  Entries whose rebuild arm
             is under a couple of milliseconds show ±30 % run-to-run
             ratio variance even with min-of-reps timing, so only the
             larger sweep points get a per-entry check — the aggregate
             floor below still covers the small ones. *)
          let min_stable_ms = 2.0 in
          if
            b.incremental_ms > 0. && c.incremental_ms > 0.
            && b.rebuild_ms >= min_stable_ms
            && c.rebuild_ms >= min_stable_ms
          then begin
            let b_speedup = speedup b and c_speedup = speedup c in
            if c_speedup < b_speedup *. (1. -. ratio_tolerance) then
              err
                "%s@%d: hot-path speedup regressed %.2fx -> %.2fx (> %.0f%% \
                 tolerance)"
                b.benchmark b.n_switches b_speedup c_speedup
                (100. *. ratio_tolerance)
          end)
    baseline;
  let d36 = List.filter (fun e -> e.benchmark = "D36_8") current in
  if d36 <> [] then begin
    let agg = aggregate_speedup d36 in
    if agg < min_aggregate_speedup then
      err "D36_8 sweep: aggregate incremental speedup %.2fx below the %.1fx floor"
        agg min_aggregate_speedup
  end;
  List.rev !errors

let pp ppf entries =
  Format.fprintf ppf "@[<v>%-10s %4s %6s %5s %12s %12s %8s" "benchmark" "n"
    "iters" "vcs" "incr (ms)" "rebuild (ms)" "speedup";
  List.iter
    (fun e ->
      Format.fprintf ppf "@,%-10s %4d %6d %5d %12.3f %12.3f %7.2fx" e.benchmark
        e.n_switches e.iterations e.vcs_added e.incremental_ms e.rebuild_ms
        (speedup e))
    entries;
  Format.fprintf ppf "@]"
