(** Machine-readable removal-benchmark reports (BENCH_removal.json) and
    the baseline comparison behind the CI bench-regression gate.

    A report is one entry per (benchmark, switch count) point of the
    removal sweep: the deterministic outputs ([iterations],
    [vcs_added]) plus the wall time of {!Noc_deadlock.Removal.run} in
    its incremental (default) and rebuild-per-iteration
    ([~incremental:false]) arms, both measured on the same host.

    The gate never compares absolute times across machines: it checks
    the deterministic outputs exactly and the incremental/rebuild
    speedup as a ratio. *)

type entry = {
  benchmark : string;
  n_switches : int;
  iterations : int;
  vcs_added : int;
  incremental_ms : float;
  rebuild_ms : float;
  phases : (string * float) list;
      (** Per-phase wall-time attribution (span name, total ms) from
          one traced run of the incremental arm — [cdg.build],
          [removal.find_cycle], [removal.cost_tables], ...  Empty when
          the producing harness did not trace; the CI gate never
          compares it (it is timing, hence machine-dependent). *)
}

val speedup : entry -> float
(** [rebuild_ms / incremental_ms]; [0.] on degenerate timings. *)

val aggregate_speedup : entry list -> float
(** Total rebuild time over total incremental time — dominated by the
    large sweep points, which are the ones timed reliably. *)

val to_json : entry list -> string
(** Stable, diff-friendly JSON (schema ["bench-removal/1"]). *)

val of_json : string -> (entry list, string) result
(** Inverse of {!to_json}; tolerates whitespace changes. *)

val compare_to_baseline :
  ?ratio_tolerance:float ->
  ?min_aggregate_speedup:float ->
  baseline:entry list ->
  entry list ->
  string list
(** [compare_to_baseline ~baseline current] is the list of gate
    violations (empty = pass):
    - an entry of the baseline missing from [current];
    - [iterations] or [vcs_added] differing from the baseline — the
      algorithm is deterministic, so any drift is a real behaviour
      change;
    - the per-entry speedup ratio dropping more than [ratio_tolerance]
      (default [0.25]) below the baseline ratio, on entries large
      enough to time stably (rebuild arm >= 2 ms in both reports —
      smaller entries show ±30 % ratio noise and are covered by the
      aggregate floor instead);
    - the aggregate D36_8 speedup falling below
      [min_aggregate_speedup] (default [4.], slack under the measured
      ~5.3x for noisy CI hosts). *)

val pp : Format.formatter -> entry list -> unit
(** Human-readable table of a report. *)
